// Suite assembly: the scenario roster, the smoke and canary
// configurations, and the driver that runs the matrix, renders the
// report, and enforces the suite-level gates — every real invariant
// intact, enough injectors demonstrably active, and the sanity break
// caught.

package simulation

import (
	"fmt"
	"io"
	"time"

	stm "github.com/stm-go/stm"
	"github.com/stm-go/stm/internal/simrand"
)

// Scenarios returns the real (invariant-holding) scenario roster.
func Scenarios() []Scenario {
	return []Scenario{Bank(), Orders(), Mesh(), Serve()}
}

// SuiteConfig parameterizes a matrix run: every scenario under every
// engine × policy combination, faults armed, one base seed.
type SuiteConfig struct {
	Engines   []stm.Engine
	Policies  []string
	Scenarios []Scenario
	Seed      uint64        // 0: resolve via simrand (STM_SIM_SEED or fresh)
	Duration  time.Duration // per scenario run
	Workers   int
	Faults    bool
	Sanity    bool      // run the broken scenario; REQUIRE it caught
	MinInject int       // per faulted run, least distinct injectors that must fire
	Out       io.Writer // progress and report; nil discards
	JSONL     io.Writer // machine-readable per-run records (WriteJSONL); nil skips
	Publish   bool      // keep the current run's Memories Published as "stmsim"
}

// Smoke is the CI tier: every scenario on both engines under the default
// policy with faults armed, short enough to ride on every PR (about 15s
// wall plus race overhead), strict enough to demand three injectors per
// run and a caught sanity break.
func Smoke() SuiteConfig {
	return SuiteConfig{
		Engines:   stm.Engines(),
		Policies:  []string{"default"},
		Scenarios: Scenarios(),
		Duration:  1200 * time.Millisecond,
		Workers:   4,
		Faults:    true,
		Sanity:    true,
		MinInject: 3,
	}
}

// Canary is the long tier: the full engine × policy matrix, the total
// duration split evenly across runs. Meant for nightly / on-demand runs
// (stmsim -suite canary -duration 10m).
func Canary(total time.Duration) SuiteConfig {
	cfg := Smoke()
	cfg.Policies = Policies()
	runs := len(cfg.Engines)*len(cfg.Policies)*len(cfg.Scenarios) + len(cfg.Engines) // + sanity
	if total <= 0 {
		total = 10 * time.Minute
	}
	cfg.Duration = total / time.Duration(runs)
	return cfg
}

// RunSuite executes the matrix and returns every Result plus the overall
// verdict. The verdict is false when any real scenario violated an
// invariant or errored, when a faulted run could not demonstrate
// MinInject distinct injectors, or when the sanity scenario's deliberate
// break went UNCAUGHT.
func RunSuite(cfg SuiteConfig) ([]Result, bool) {
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	// nil means "the full roster"; an explicitly empty slice means "no
	// real scenarios" (the -suite sanity mode runs only the planted bug).
	if cfg.Scenarios == nil {
		cfg.Scenarios = Scenarios()
	}
	if len(cfg.Engines) == 0 {
		cfg.Engines = stm.Engines()
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = []string{"default"}
	}
	seed := cfg.Seed
	if seed == 0 {
		var replay bool
		seed, replay = simrand.Pick()
		if replay {
			fmt.Fprintf(out, "replaying seed %d from %s\n", seed, simrand.EnvSeed)
		}
	}
	fmt.Fprintf(out, "suite: %d scenarios × %d engines × %d policies, %v per run, faults=%v, seed=%d\n",
		len(cfg.Scenarios), len(cfg.Engines), len(cfg.Policies), cfg.Duration, cfg.Faults, seed)

	var results []Result
	ok := true
	run := func(scn Scenario, eng stm.Engine, pol string) Result {
		fmt.Fprintf(out, "run %-9s engine=%-4s policy=%s ...\n", scn.Name(), eng, pol)
		return RunScenario(Config{
			Engine:   eng,
			Policy:   pol,
			Seed:     seed,
			Duration: cfg.Duration,
			Workers:  cfg.Workers,
			Faults:   cfg.Faults,
			Publish:  cfg.Publish,
		}, scn)
	}
	for _, eng := range cfg.Engines {
		for _, pol := range cfg.Policies {
			for _, scn := range cfg.Scenarios {
				r := run(scn, eng, pol)
				results = append(results, r)
				if !r.OK() {
					ok = false
				}
				if cfg.Faults && r.Err == nil && r.Faults.Injectors() < cfg.MinInject {
					ok = false
					r.Violations = append(r.Violations, fmt.Sprintf(
						"harness: only %d distinct fault injectors fired, want >= %d",
						r.Faults.Injectors(), cfg.MinInject))
					results[len(results)-1] = r
				}
			}
		}
		// Sanity rides once per engine (policy doesn't change the bug):
		// its run must end in a REPORTED violation, or the suite's
		// auditors are decorative and everything above proved nothing.
		if cfg.Sanity {
			r := run(Sanity(), eng, cfg.Policies[0])
			results = append(results, r)
			if r.Err != nil || len(r.Violations) == 0 {
				ok = false
				r.Violations = append(r.Violations,
					"harness: sanity break NOT caught — the invariant checkers are blind")
				results[len(results)-1] = r
			}
		}
	}

	fmt.Fprintln(out)
	WriteReport(out, results)
	if cfg.JSONL != nil {
		if err := WriteJSONL(cfg.JSONL, results); err != nil {
			fmt.Fprintf(out, "jsonl: write failed: %v\n", err)
			ok = false
		}
	}
	if cfg.Sanity {
		fmt.Fprintln(out, "note: sanity VIOLATION entries are the expected outcome — the harness must catch its own planted bug")
	}
	if ok {
		fmt.Fprintf(out, "suite PASS (seed %d)\n", seed)
	} else {
		fmt.Fprintf(out, "suite FAIL — replay with -seed %d or %s=%d\n", seed, simrand.EnvSeed, seed)
	}
	return results, ok
}
