// The sanity scenario: a bank that is DELIBERATELY broken — the debit and
// the credit commit in two separate transactions with a stall between
// them, so the conserved total visibly flickers. Its job is to fail: the
// suite requires the harness to catch and report the violation (with the
// replay seed). A harness whose auditors cannot see this break would pass
// the real scenarios vacuously.

package simulation

import (
	"sync"
	"time"

	stm "github.com/stm-go/stm"
	"github.com/stm-go/stm/stmds"
)

const (
	sanityAccounts = 16
	sanityInitial  = int64(1_000)
)

type sanityScenario struct{}

// Sanity returns the deliberately broken scenario.
func Sanity() Scenario { return sanityScenario{} }

func (sanityScenario) Name() string { return "sanity" }

func (sanityScenario) Run(env *Env) error {
	m, err := env.NewMemory(1 << 14)
	if err != nil {
		return err
	}
	mp, err := stmds.NewMap[int64, int64](m, stm.Int64(), stm.Int64(), sanityAccounts)
	if err != nil {
		return err
	}
	for k := int64(0); k < sanityAccounts; k++ {
		if _, _, err := mp.Put(k, sanityInitial); err != nil {
			return err
		}
	}
	const total = sanityAccounts * sanityInitial

	var wg sync.WaitGroup
	for w := 0; w < env.Workers(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := env.Stream(uint64(w))
			for !env.Stopped() {
				from := int64(rng.Intn(sanityAccounts))
				to := int64(rng.Intn(sanityAccounts))
				want := int64(rng.Intn(100) + 1)
				if from == to {
					continue
				}
				var amt int64
				// THE BUG: two transactions where the bank scenario uses
				// one. Between them the money is nowhere.
				err := m.Atomically(func(tx *stm.DTx) error {
					va, _ := mp.GetTx(tx, from)
					amt = want
					if amt > va {
						amt = va
					}
					if amt == 0 {
						return nil
					}
					_, _, err := mp.PutTx(tx, from, va-amt)
					return err
				})
				if err == nil && amt > 0 {
					time.Sleep(200 * time.Microsecond) // widen the window
					err = m.Atomically(func(tx *stm.DTx) error {
						vb, _ := mp.GetTx(tx, to)
						_, _, err := mp.PutTx(tx, to, vb+amt)
						return err
					})
				}
				if err != nil {
					return
				}
				env.Op()
			}
		}(w)
	}

	for a := 0; a < 2; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for !env.Stopped() {
				var sum int64
				err := m.Atomically(func(tx *stm.DTx) error {
					sum = 0
					mp.RangeTx(tx, func(k, v int64) bool {
						sum += v
						return true
					})
					return nil
				})
				if err != nil {
					return
				}
				if sum != total {
					// Expected! This is the violation the suite demands.
					env.Violatef("sanity: conservation broken as designed: sum %d, want %d", sum, total)
					return
				}
				env.Checked()
			}
		}(a)
	}

	wg.Wait()
	return nil
}
