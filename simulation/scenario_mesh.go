// The mesh scenario: a three-stage producer/consumer pipeline over
// stmds.Queues whose middle stages are OrElse monitors — each mover
// prefers draining its downstream queue and falls back to the upstream
// one, parking transactionally when both are blocked. Producers and
// consumers maintain in/out counter and sum Vars in the same transactions
// that move tokens, so the auditors can assert flow balance
// (in == out + queued) in one snapshot, and teardown can drain the pipe
// and balance the value sums exactly.

package simulation

import (
	"runtime"
	"sync"

	stm "github.com/stm-go/stm"
	"github.com/stm-go/stm/stmds"
)

const meshQueueCap = 32

type meshScenario struct{}

// Mesh returns the pipeline scenario.
func Mesh() Scenario { return meshScenario{} }

func (meshScenario) Name() string { return "mesh" }

func (meshScenario) Run(env *Env) error {
	m, err := env.NewMemory(1 << 12)
	if err != nil {
		return err
	}
	var qs [3]*stmds.Queue[int64]
	for i := range qs {
		if qs[i], err = stmds.NewQueue[int64](m, stm.Int64(), meshQueueCap); err != nil {
			return err
		}
	}
	var inCnt, outCnt, inSum, outSum *stm.Var[int64]
	for _, v := range []**stm.Var[int64]{&inCnt, &outCnt, &inSum, &outSum} {
		if *v, err = stm.Alloc[int64](m, stm.Int64()); err != nil {
			return err
		}
	}

	producers := env.Workers() / 2
	if producers == 0 {
		producers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := env.Stream(uint64(w))
			for !env.Stopped() {
				v := int64(rng.Intn(100) + 1)
				ok := false
				err := m.Atomically(func(tx *stm.DTx) error {
					ok = qs[0].TryPutTx(tx, v)
					if !ok {
						return nil
					}
					stm.WriteVar(tx, inCnt, stm.ReadVar(tx, inCnt)+1)
					stm.WriteVar(tx, inSum, stm.ReadVar(tx, inSum)+v)
					return nil
				})
				if err != nil {
					env.Violatef("mesh: produce failed: %v", err)
					return
				}
				if ok {
					env.Op()
				} else {
					runtime.Gosched() // pipe full; let movers catch up
				}
			}
		}(w)
	}

	// Movers: OrElse monitors. The downstream hop is the preferred branch
	// so the pipe drains ahead of filling; when both hops are blocked
	// (empty upstreams, full downstreams) the mover parks transactionally
	// until any watched word changes, or the run's context ends it.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !env.Stopped() {
				err := m.OrElseContext(env.Ctx(),
					func(tx *stm.DTx) error {
						qs[2].PutTx(tx, qs[1].TakeTx(tx))
						return nil
					},
					func(tx *stm.DTx) error {
						qs[1].PutTx(tx, qs[0].TakeTx(tx))
						return nil
					},
				)
				if err != nil {
					return // context cancelled: run is over
				}
				env.Op()
			}
		}(w)
	}

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !env.Stopped() {
				err := m.AtomicallyContext(env.Ctx(), func(tx *stm.DTx) error {
					v := qs[2].TakeTx(tx)
					stm.WriteVar(tx, outCnt, stm.ReadVar(tx, outCnt)+1)
					stm.WriteVar(tx, outSum, stm.ReadVar(tx, outSum)+v)
					return nil
				})
				if err != nil {
					return
				}
				env.Op()
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for !env.Stopped() {
			var ic, oc int64
			var queued int
			err := m.Atomically(func(tx *stm.DTx) error {
				ic = stm.ReadVar(tx, inCnt)
				oc = stm.ReadVar(tx, outCnt)
				queued = qs[0].LenTx(tx) + qs[1].LenTx(tx) + qs[2].LenTx(tx)
				return nil
			})
			if err != nil {
				env.Violatef("mesh: audit failed: %v", err)
				return
			}
			if ic != oc+int64(queued) {
				env.Violatef("mesh: flow imbalance: in %d != out %d + queued %d", ic, oc, queued)
				return
			}
			env.Checked()
		}
	}()

	wg.Wait()

	// Teardown: every worker has stopped, so the state is quiescent. Drain
	// whatever is still in the pipe and balance the value sums exactly —
	// a torn token (count moved, value lost) survives the flow audit but
	// not this.
	var drainCnt, drainSum int64
	for i := range qs {
		for {
			v, ok := qs[i].TryTake()
			if !ok {
				break
			}
			drainCnt++
			drainSum += v
		}
	}
	ic, oc := inCnt.Load(), outCnt.Load()
	is, os := inSum.Load(), outSum.Load()
	if ic != oc+drainCnt {
		env.Violatef("mesh: teardown count imbalance: in %d != out %d + drained %d", ic, oc, drainCnt)
	}
	if is != os+drainSum {
		env.Violatef("mesh: teardown value imbalance: in %d != out %d + drained %d", is, os, drainSum)
	}
	env.Checked()
	return nil
}
