package simulation

import (
	"bytes"
	"strings"
	"testing"
	"time"

	stm "github.com/stm-go/stm"
	"github.com/stm-go/stm/internal/simrand"
)

// TestSmokeSuite runs the real CI tier end to end, shortened: every
// scenario on both engines with faults armed, the injector floor
// enforced, and the sanity break required caught. This is the test the
// ci.yml sim-smoke job leans on.
func TestSmokeSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-system suite: seconds of wall clock")
	}
	cfg := Smoke()
	cfg.Seed = simrand.SeedForTest(t)
	cfg.Duration = 700 * time.Millisecond
	var out bytes.Buffer
	cfg.Out = &out
	results, ok := RunSuite(cfg)
	if !ok {
		t.Fatalf("suite failed:\n%s", out.String())
	}
	wantRuns := len(cfg.Engines) * (len(Scenarios()) + 1) // + sanity per engine
	if len(results) != wantRuns {
		t.Fatalf("got %d results, want %d", len(results), wantRuns)
	}
	for _, r := range results {
		if r.Scenario == "sanity" {
			if len(r.Violations) == 0 {
				t.Errorf("sanity on %s: planted bug not caught", r.Engine)
			}
			continue
		}
		if !r.OK() {
			t.Errorf("%s on %s: err=%v violations=%v", r.Scenario, r.Engine, r.Err, r.Violations)
		}
		if r.Ops == 0 || r.Checks == 0 {
			t.Errorf("%s on %s: ops=%d checks=%d — scenario did no work", r.Scenario, r.Engine, r.Ops, r.Checks)
		}
		if r.Faults.Injectors() < cfg.MinInject {
			t.Errorf("%s on %s: only %d injectors fired (%+v), want >= %d",
				r.Scenario, r.Engine, r.Faults.Injectors(), r.Faults, cfg.MinInject)
		}
	}
	if !strings.Contains(out.String(), "replay:") {
		t.Error("report does not surface the replay seed for the sanity violation")
	}
}

// TestEveryPolicyRuns pushes one scenario through every contention-policy
// selector — the canary matrix dimension, pinned cheaply on every PR.
func TestEveryPolicyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-system suite: seconds of wall clock")
	}
	seed := simrand.SeedForTest(t)
	for _, pol := range Policies() {
		r := RunScenario(Config{
			Engine:   stm.ST,
			Policy:   pol,
			Seed:     seed,
			Duration: 120 * time.Millisecond,
			Workers:  4,
		}, Bank())
		if !r.OK() {
			t.Errorf("policy %s: err=%v violations=%v", pol, r.Err, r.Violations)
		}
		if r.Ops == 0 {
			t.Errorf("policy %s: no operations completed", pol)
		}
	}
}

func TestUnknownPolicyErrors(t *testing.T) {
	r := RunScenario(Config{Policy: "nope", Duration: 10 * time.Millisecond}, Bank())
	if r.Err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestSanityScenarioCaught pins the harness's own eyesight without the
// suite wrapper: the planted two-transaction bug must surface as a
// recorded violation on both engines.
func TestSanityScenarioCaught(t *testing.T) {
	seed := simrand.SeedForTest(t)
	for _, eng := range stm.Engines() {
		r := RunScenario(Config{
			Engine:   eng,
			Seed:     seed,
			Duration: 2 * time.Second, // violation ends the run far earlier
			Workers:  4,
		}, Sanity())
		if r.Err != nil {
			t.Fatalf("engine %s: %v", eng, r.Err)
		}
		if len(r.Violations) == 0 {
			t.Errorf("engine %s: planted bug not caught", eng)
		}
	}
}

// TestParkerDecisionStreamDeterministic pins the replay contract at the
// injector level: the same seed yields the same park/no-park decision
// sequence with the same stall lengths.
func TestParkerDecisionStreamDeterministic(t *testing.T) {
	decisions := func(seed uint64) []uint64 {
		p := newParker(seed)
		var out []uint64
		for i := 0; i < 4096; i++ {
			h := splitmix(p.seed ^ p.seq.Add(1))
			if h%parkDenom == 0 {
				out = append(out, uint64(i)<<32|(h>>32)%uint64(parkSpan))
			}
		}
		return out
	}
	a, b := decisions(99), decisions(99)
	if len(a) == 0 {
		t.Fatal("no parks in 4096 decisions; parkDenom mistuned")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different decision counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged", i)
		}
	}
	if c := decisions(100); len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("distinct seeds produced identical decision streams")
		}
	}
}

// TestSanityOnlySuiteMode pins the -suite sanity contract: an explicitly
// empty scenario slice runs only the planted bug, and the suite passes
// exactly because the bug was caught.
func TestSanityOnlySuiteMode(t *testing.T) {
	cfg := Smoke()
	cfg.Seed = simrand.SeedForTest(t)
	cfg.Scenarios = []Scenario{}
	cfg.Duration = 2 * time.Second
	results, ok := RunSuite(cfg)
	if !ok {
		t.Fatal("sanity-only suite failed")
	}
	for _, r := range results {
		if r.Scenario != "sanity" {
			t.Fatalf("unexpected scenario %q in sanity-only mode", r.Scenario)
		}
	}
	if len(results) != len(cfg.Engines) {
		t.Fatalf("got %d results, want %d", len(results), len(cfg.Engines))
	}
}
