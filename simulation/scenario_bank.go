// The bank scenario: concurrent transfers over an stmds.Map of accounts,
// audited by whole-map RangeTx snapshots asserting the conserved total —
// the canonical atomicity demonstration, run at system scale with resizes
// in flight under the auditors.

package simulation

import (
	"sync"

	stm "github.com/stm-go/stm"
	"github.com/stm-go/stm/stmds"
)

const (
	bankAccounts = 48
	bankInitial  = int64(1_000)
	bankChurnMax = 96 // ephemeral keys above the account range
)

type bankScenario struct{}

// Bank returns the transfer/audit scenario.
func Bank() Scenario { return bankScenario{} }

func (bankScenario) Name() string { return "bank" }

func (bankScenario) Run(env *Env) error {
	m, err := env.NewMemory(1 << 16)
	if err != nil {
		return err
	}
	// Seed the map small so growth happens during the run, not before it.
	mp, err := stmds.NewMap[int64, int64](m, stm.Int64(), stm.Int64(), 0)
	if err != nil {
		return err
	}
	for k := int64(0); k < bankAccounts; k++ {
		if _, _, err := mp.Put(k, bankInitial); err != nil {
			return err
		}
	}
	const total = bankAccounts * bankInitial

	var wg sync.WaitGroup
	for w := 0; w < env.Workers(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := env.Stream(uint64(w))
			for !env.Stopped() {
				from := int64(rng.Intn(bankAccounts))
				to := int64(rng.Intn(bankAccounts))
				want := int64(rng.Intn(200) + 1)
				if from == to {
					continue
				}
				err := m.Atomically(func(tx *stm.DTx) error {
					va, _ := mp.GetTx(tx, from)
					vb, _ := mp.GetTx(tx, to)
					amt := want
					if amt > va {
						amt = va // never overdraw; audits also check non-negative
					}
					if amt == 0 {
						return nil
					}
					if _, _, err := mp.PutTx(tx, from, va-amt); err != nil {
						return err
					}
					_, _, err := mp.PutTx(tx, to, vb+amt)
					return err
				})
				if err != nil {
					env.Violatef("bank: transfer failed: %v", err)
					return
				}
				env.Op()
				// Fault injector: churn an ephemeral key so incremental
				// resizes keep running under the snapshot auditors. The key
				// is outside the audited range and worth 0 either way.
				if env.FaultsOn() && rng.Intn(4) == 0 {
					ck := bankAccounts + int64(rng.Intn(bankChurnMax))
					if _, _, err := mp.Put(ck, 0); err != nil {
						env.Violatef("bank: churn put failed: %v", err)
						return
					}
					mp.Delete(ck)
					env.CountMapChurn()
				}
			}
		}(w)
	}

	for a := 0; a < 2; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for !env.Stopped() {
				var sum, negKey, negVal int64
				neg := false
				err := m.Atomically(func(tx *stm.DTx) error {
					sum, neg = 0, false
					mp.RangeTx(tx, func(k, v int64) bool {
						if k < bankAccounts {
							sum += v
						}
						if v < 0 {
							neg, negKey, negVal = true, k, v
						}
						return true
					})
					return nil
				})
				if err != nil {
					env.Violatef("bank: audit failed: %v", err)
					return
				}
				if sum != total {
					env.Violatef("bank: conservation broken: RangeTx sum = %d, want %d", sum, total)
					return
				}
				if neg {
					env.Violatef("bank: account %d went negative (%d)", negKey, negVal)
					return
				}
				env.Checked()
			}
		}(a)
	}

	wg.Wait()
	return nil
}
