package stm_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	stm "github.com/stm-go/stm"
	"github.com/stm-go/stm/internal/simrand"
)

func mustNew(t *testing.T, size int) *stm.Memory {
	t.Helper()
	m, err := stm.New(size)
	if err != nil {
		t.Fatalf("New(%d): %v", size, err)
	}
	return m
}

func mustNewEngine(t *testing.T, size int, eng stm.Engine) *stm.Memory {
	t.Helper()
	m, err := stm.New(size, stm.WithEngine(eng))
	if err != nil {
		t.Fatalf("New(%d, WithEngine(%v)): %v", size, eng, err)
	}
	return m
}

// forEachEngine runs f as a subtest per commit engine, so the concurrent
// harnesses (conservation, linearizability — the ones meant for -race)
// exercise every protocol, not just the default.
func forEachEngine(t *testing.T, f func(t *testing.T, eng stm.Engine)) {
	for _, e := range stm.Engines() {
		t.Run("engine="+e.String(), func(t *testing.T) { f(t, e) })
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := stm.New(0); err == nil {
		t.Error("New(0): want error")
	}
	if _, err := stm.New(-1); err == nil {
		t.Error("New(-1): want error")
	}
}

func TestPrepareValidation(t *testing.T) {
	m := mustNew(t, 8)
	tests := []struct {
		name  string
		addrs []int
		want  error
	}{
		{name: "empty", addrs: nil, want: stm.ErrEmptyDataSet},
		{name: "out of range", addrs: []int{8}, want: stm.ErrAddrRange},
		{name: "negative", addrs: []int{-2}, want: stm.ErrAddrRange},
		{name: "duplicate", addrs: []int{3, 3}, want: stm.ErrDupAddr},
		{name: "duplicate far apart", addrs: []int{3, 1, 3}, want: stm.ErrDupAddr},
		{name: "ok unsorted", addrs: []int{5, 1, 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := m.Prepare(tt.addrs)
			if tt.want == nil {
				if err != nil {
					t.Fatalf("Prepare(%v) = %v, want nil", tt.addrs, err)
				}
				return
			}
			if !errors.Is(err, tt.want) {
				t.Fatalf("Prepare(%v) = %v, want %v", tt.addrs, err, tt.want)
			}
		})
	}
}

func TestDupAddrCompat(t *testing.T) {
	// Duplicate addresses report the dedicated ErrDupAddr sentinel only.
	// The deprecated one-release compatibility match against ErrAddrOrder
	// (duplicates used to be reported as ordering errors) is gone, and a
	// genuine ordering error must NOT match ErrDupAddr.
	m := mustNew(t, 8)
	_, err := m.Prepare([]int{3, 3})
	if !errors.Is(err, stm.ErrDupAddr) {
		t.Errorf("duplicate: err = %v, want ErrDupAddr", err)
	}
	if errors.Is(err, stm.ErrAddrOrder) {
		t.Errorf("duplicate: err = %v must no longer match ErrAddrOrder (compat window over)", err)
	}
	if _, _, err := m.Try([]int{5, 5}, func(o []uint64) []uint64 { return o }); !errors.Is(err, stm.ErrDupAddr) {
		t.Errorf("Try duplicate: err = %v, want ErrDupAddr", err)
	}
}

func TestCallerOrderPreserved(t *testing.T) {
	// Addresses declared in descending order: old values and update results
	// must still be index-aligned with the caller's slice.
	m := mustNew(t, 10)
	if err := m.WriteAll([]int{2, 7}, []uint64{200, 700}); err != nil {
		t.Fatal(err)
	}
	tx, err := m.Prepare([]int{7, 2}) // descending on purpose
	if err != nil {
		t.Fatal(err)
	}
	old := tx.Run(func(old []uint64) []uint64 {
		// old[0] must be word 7, old[1] word 2.
		return []uint64{old[0] + 1, old[1] + 2}
	})
	if old[0] != 700 || old[1] != 200 {
		t.Fatalf("old = %v, want [700 200] (caller order)", old)
	}
	if got := m.Peek(7); got != 701 {
		t.Errorf("Peek(7) = %d, want 701", got)
	}
	if got := m.Peek(2); got != 202 {
		t.Errorf("Peek(2) = %d, want 202", got)
	}
}

func TestTxAddrs(t *testing.T) {
	m := mustNew(t, 10)
	in := []int{9, 0, 4}
	tx, err := m.Prepare(in)
	if err != nil {
		t.Fatal(err)
	}
	got := tx.Addrs()
	if len(got) != 3 || got[0] != 9 || got[1] != 0 || got[2] != 4 {
		t.Errorf("Addrs() = %v, want %v", got, in)
	}
}

func TestAtomicUpdateNilUpdate(t *testing.T) {
	m := mustNew(t, 2)
	if _, err := m.AtomicUpdate([]int{0}, nil); !errors.Is(err, stm.ErrNilUpdate) {
		t.Errorf("err = %v, want ErrNilUpdate", err)
	}
	if _, _, err := m.Try([]int{0}, nil); !errors.Is(err, stm.ErrNilUpdate) {
		t.Errorf("Try err = %v, want ErrNilUpdate", err)
	}
}

func TestRunWhenBlocksUntilGuardHolds(t *testing.T) {
	// A consumer waits for a word to become non-zero; a producer sets it.
	m := mustNew(t, 1)
	tx, err := m.Prepare([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan uint64, 1)
	go func() {
		old := tx.RunWhen(
			func(old []uint64) bool { return old[0] != 0 },
			func(old []uint64) []uint64 { return []uint64{old[0] - 1} },
		)
		done <- old[0]
	}()

	if _, err := m.Swap(0, 5); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if got != 5 {
		t.Errorf("RunWhen observed %d, want 5", got)
	}
	if v := m.Peek(0); v != 4 {
		t.Errorf("Peek(0) = %d, want 4", v)
	}
}

func TestConcurrentAddExact(t *testing.T) {
	const (
		goroutines = 8
		each       = 1500
	)
	m := mustNew(t, 1)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := m.Add(0, 1); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, want := m.Peek(0), uint64(goroutines*each); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
}

// TestCASNMatchesSequentialSpec drives a single-goroutine CASN against a
// model vector with property-based inputs: for every random op the observed
// snapshot, success flag, and resulting state must match the specification.
func TestCASNMatchesSequentialSpec(t *testing.T) {
	const size = 6
	m := mustNew(t, size)
	model := make([]uint64, size)

	step := func(rawAddrs []uint8, rawExp, rawNew []uint8) bool {
		if len(rawAddrs) == 0 {
			return true
		}
		// Build a duplicate-free address set in caller order.
		seen := make(map[int]bool, len(rawAddrs))
		var addrs []int
		for _, a := range rawAddrs {
			loc := int(a) % size
			if !seen[loc] {
				seen[loc] = true
				addrs = append(addrs, loc)
			}
		}
		expected := make([]uint64, len(addrs))
		newv := make([]uint64, len(addrs))
		for i := range addrs {
			// Half the time use the true current value so swaps succeed.
			if i < len(rawExp) && rawExp[i]%2 == 0 {
				expected[i] = model[addrs[i]]
			} else if i < len(rawExp) {
				expected[i] = uint64(rawExp[i])
			}
			if i < len(rawNew) {
				newv[i] = uint64(rawNew[i])
			}
		}

		swapped, old, err := m.CompareAndSwapN(addrs, expected, newv)
		if err != nil {
			t.Fatalf("CASN: %v", err)
		}
		// Spec: old must equal the model's current values.
		wantSwap := true
		for i, loc := range addrs {
			if old[i] != model[loc] {
				t.Fatalf("observed old[%d]=%d, model=%d", i, old[i], model[loc])
			}
			if model[loc] != expected[i] {
				wantSwap = false
			}
		}
		if swapped != wantSwap {
			t.Fatalf("swapped=%v, spec says %v", swapped, wantSwap)
		}
		if wantSwap {
			for i, loc := range addrs {
				model[loc] = newv[i]
			}
		}
		// Memory must equal the model.
		for loc := 0; loc < size; loc++ {
			if m.Peek(loc) != model[loc] {
				t.Fatalf("memory[%d]=%d, model=%d", loc, m.Peek(loc), model[loc])
			}
		}
		return true
	}

	// Seeded via simrand: the failing input sequence replays exactly from
	// the seed logged on failure (STM_SIM_SEED).
	cfg := &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(int64(simrand.SeedForTest(t)))),
	}
	if err := quick.Check(step, cfg); err != nil {
		t.Error(err)
	}
}

func TestCompareAndSwapSingle(t *testing.T) {
	m := mustNew(t, 2)
	ok, err := m.CompareAndSwap(1, 0, 42)
	if err != nil || !ok {
		t.Fatalf("CAS(1,0,42) = (%v,%v), want (true,nil)", ok, err)
	}
	ok, err = m.CompareAndSwap(1, 0, 99)
	if err != nil || ok {
		t.Fatalf("CAS(1,0,99) = (%v,%v), want (false,nil)", ok, err)
	}
	if got := m.Peek(1); got != 42 {
		t.Errorf("Peek(1) = %d, want 42", got)
	}
}

func TestWriteAllReadAll(t *testing.T) {
	m := mustNew(t, 5)
	if err := m.WriteAll([]int{4, 0, 2}, []uint64{40, 0, 20}); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadAll(0, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 20 || got[2] != 40 {
		t.Errorf("ReadAll = %v, want [0 20 40]", got)
	}
	if err := m.WriteAll([]int{1}, []uint64{1, 2}); err == nil {
		t.Error("WriteAll length mismatch: want error")
	}
	if _, _, err := m.CompareAndSwapN([]int{1}, []uint64{0, 0}, []uint64{1}); err == nil {
		t.Error("CASN expected-length mismatch: want error")
	}
	if _, _, err := m.CompareAndSwapN([]int{1}, []uint64{0}, []uint64{1, 1}); err == nil {
		t.Error("CASN new-length mismatch: want error")
	}
}

func TestSwapReturnsOld(t *testing.T) {
	m := mustNew(t, 1)
	old, err := m.Swap(0, 7)
	if err != nil || old != 0 {
		t.Fatalf("Swap = (%d,%v), want (0,nil)", old, err)
	}
	old, err = m.Swap(0, 9)
	if err != nil || old != 7 {
		t.Fatalf("Swap = (%d,%v), want (7,nil)", old, err)
	}
}

func TestAddTwosComplementSubtraction(t *testing.T) {
	m := mustNew(t, 1)
	if _, err := m.Add(0, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(0, ^uint64(0)); err != nil { // -1
		t.Fatal(err)
	}
	if got := m.Peek(0); got != 9 {
		t.Errorf("Peek = %d, want 9", got)
	}
}

func TestSnapshotConsistentUnderTransfers(t *testing.T) {
	const size = 6
	m := mustNew(t, size)
	for i := 0; i < size; i++ {
		if _, err := m.Swap(i, 100); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			a, b := n%size, (n+1)%size
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			if _, err := m.AtomicUpdate([]int{lo, hi}, func(old []uint64) []uint64 {
				return []uint64{old[0] - 1, old[1] + 1}
			}); err != nil {
				t.Error(err)
				return
			}
			n++
		}
	}()
	for i := 0; i < 200; i++ {
		snap, err := m.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		var sum uint64
		for _, v := range snap {
			sum += v
		}
		if sum != size*100 {
			t.Fatalf("snapshot sum = %d, want %d", sum, size*100)
		}
	}
	close(stop)
	wg.Wait()
}

func TestStatsExposed(t *testing.T) {
	m := mustNew(t, 1)
	if _, err := m.Add(0, 1); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Attempts == 0 || st.Commits == 0 {
		t.Errorf("stats not accumulating: %+v", st)
	}
}
