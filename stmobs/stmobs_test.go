package stmobs_test

import (
	"context"
	"encoding/json"
	"runtime/pprof"
	"sync"
	"testing"

	stm "github.com/stm-go/stm"
	"github.com/stm-go/stm/stmobs"
)

func TestEventCounter(t *testing.T) {
	m, err := stm.New(8)
	if err != nil {
		t.Fatal(err)
	}
	c := &stmobs.EventCounter{}
	m.Observe(stm.ObsConfig{Level: stm.ObsCounters, Observer: c})
	const n = 25
	for i := 0; i < n; i++ {
		if _, err := m.Add(i%8, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Count(stm.EvCommit); got != n {
		t.Errorf("commit count = %d, want %d", got, n)
	}
	if got := c.Count(stm.EvBegin); got < n {
		t.Errorf("begin count = %d, want >= %d", got, n)
	}
	if got := c.Count(stm.EventKind(200)); got != 0 {
		t.Errorf("out-of-range kind count = %d, want 0", got)
	}
}

func TestRingTracerEviction(t *testing.T) {
	r := stmobs.NewRingTracer(3)
	for i := 0; i < 5; i++ {
		r.ObsTrace(&stm.TraceEvent{Seq: uint64(i)})
	}
	if r.Total() != 5 {
		t.Errorf("total = %d, want 5", r.Total())
	}
	traces := r.Traces()
	if len(traces) != 3 {
		t.Fatalf("retained %d traces, want 3", len(traces))
	}
	// Oldest first, the newest 3 of the 5 delivered.
	for i, tr := range traces {
		if want := uint64(i + 2); tr.Seq != want {
			t.Errorf("traces[%d].Seq = %d, want %d", i, tr.Seq, want)
		}
	}
}

func TestRingTracerSampledFromMemory(t *testing.T) {
	m, err := stm.New(8)
	if err != nil {
		t.Fatal(err)
	}
	r := stmobs.NewRingTracer(64)
	m.Observe(stm.ObsConfig{Level: stm.ObsTrace, Observer: r, SampleEvery: 1})
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := m.Add(2, 1); err != nil {
			t.Fatal(err)
		}
	}
	if r.Total() != n {
		t.Errorf("traced %d transactions, want %d", r.Total(), n)
	}
	for _, tr := range r.Traces() {
		if !tr.Committed || len(tr.Addrs) != 1 || tr.Addrs[0] != 2 {
			t.Errorf("trace = %+v, want a committed [2] footprint", tr)
		}
	}
}

func TestRingTracerConcurrent(t *testing.T) {
	r := stmobs.NewRingTracer(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.ObsTrace(&stm.TraceEvent{Seq: uint64(w*1000 + i)})
				if i%100 == 0 {
					_ = r.Traces()
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != 2000 || len(r.Traces()) != 8 {
		t.Errorf("total=%d retained=%d, want 2000/8", r.Total(), len(r.Traces()))
	}
}

func TestStatsMap(t *testing.T) {
	for _, eng := range stm.Engines() {
		m, err := stm.New(8, stm.WithEngine(eng),
			stm.WithObs(stm.ObsConfig{Level: stm.ObsHistograms}))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 7; i++ {
			if _, err := m.Add(0, 1); err != nil {
				t.Fatal(err)
			}
		}
		sm := stmobs.StatsMap(m)
		if sm["engine"] != eng.String() || sm["obs_level"] != "hist" {
			t.Errorf("%v: engine/obs_level = %v/%v", eng, sm["engine"], sm["obs_level"])
		}
		if sm["commits"] != uint64(7) {
			t.Errorf("%v: commits = %v, want 7", eng, sm["commits"])
		}
		// Per-engine taxonomy keys: only the Memory's engine's keys appear.
		_, hasST := sm["aborts_st_conflict"]
		_, hasTL2 := sm["aborts_tl2_read"]
		if hasST != (eng == stm.ST) || hasTL2 != (eng == stm.TL2) {
			t.Errorf("%v: taxonomy keys st=%v tl2=%v", eng, hasST, hasTL2)
		}
		if _, ok := sm["hist_commit_ticks"]; !ok {
			t.Errorf("%v: commit histogram missing at hist level", eng)
		}
		// The map must be expvar-compatible: plain JSON marshaling works.
		if _, err := json.Marshal(sm); err != nil {
			t.Errorf("%v: StatsMap not JSON-marshalable: %v", eng, err)
		}
	}
}

func TestPprofDo(t *testing.T) {
	m, err := stm.New(4, stm.WithEngine(stm.TL2))
	if err != nil {
		t.Fatal(err)
	}
	var engine, site string
	stmobs.Do(context.Background(), m, "worker", func(ctx context.Context) {
		engine, _ = pprof.Label(ctx, "stm_engine")
		site, _ = pprof.Label(ctx, "stm_site")
	})
	if engine != "tl2" || site != "worker" {
		t.Errorf("labels = %q/%q, want tl2/worker", engine, site)
	}
}
