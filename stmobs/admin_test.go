package stmobs_test

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	stm "github.com/stm-go/stm"
	"github.com/stm-go/stm/stmobs"
)

func newMem(t *testing.T, eng stm.Engine) *stm.Memory {
	t.Helper()
	m, err := stm.New(8, stm.WithEngine(eng),
		stm.WithObs(stm.ObsConfig{Level: stm.ObsHistograms}))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPublishReplace: publishing a name again swaps which Memory it serves,
// for both expvar and the /metrics walk — the harness-republishes-per-run
// pattern.
func TestPublishReplace(t *testing.T) {
	m1 := newMem(t, stm.ST)
	m2 := newMem(t, stm.TL2)
	const name = "test_publish_replace"
	if err := stmobs.Publish(name, m1); err != nil {
		t.Fatalf("first Publish: %v", err)
	}
	if err := stmobs.Publish(name, m2); err != nil {
		t.Fatalf("re-Publish: %v", err)
	}
	v := expvar.Get(name)
	if v == nil {
		t.Fatal("expvar.Get returned nil after Publish")
	}
	var sm map[string]any
	if err := json.Unmarshal([]byte(v.String()), &sm); err != nil {
		t.Fatalf("expvar value not JSON: %v", err)
	}
	if sm["engine"] != "tl2" {
		t.Errorf("after re-Publish, expvar serves engine=%v, want tl2 (the replacement)", sm["engine"])
	}
}

// TestPublishForeignCollision: a name already owned by an outside expvar
// publisher cannot be taken over.
func TestPublishForeignCollision(t *testing.T) {
	const name = "test_publish_foreign"
	expvar.Publish(name, expvar.Func(func() any { return 1 }))
	if err := stmobs.Publish(name, newMem(t, stm.ST)); err == nil {
		t.Error("Publish over a foreign expvar name succeeded, want error")
	}
}

// collector is a minimal producer Collector for AdminMux.
type collector struct{ body string }

func (c collector) WritePrometheus(w io.Writer) { io.WriteString(w, c.body) }

func TestAdminMuxMetrics(t *testing.T) {
	m := newMem(t, stm.TL2)
	for i := 0; i < 5; i++ {
		if _, err := m.Add(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := stmobs.Publish("test_admin_mux", m); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(stmobs.AdminMux(collector{body: "extra_metric_total 1\n"}))
	defer ts.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ctype)
	}
	for _, want := range []string{
		`stm_attempts_total{memory="test_admin_mux",engine="tl2"}`,
		`stm_commits_total{memory="test_admin_mux",engine="tl2"} 5`,
		`stm_aborts_total{memory="test_admin_mux",engine="tl2",reason="tl2-read"}`,
		`# TYPE stm_commit_ticks histogram`,
		`stm_commit_ticks_count{memory="test_admin_mux",engine="tl2"} 5`,
		`stm_tick_seconds`,
		"extra_metric_total 1", // the Collector's contribution
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	vars, _ := get("/debug/vars")
	var all map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &all); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := all["test_admin_mux"]; !ok {
		t.Error("/debug/vars missing the published memory")
	}

	if prof, _ := get("/debug/pprof/"); !strings.Contains(prof, "goroutine") {
		t.Error("/debug/pprof/ index missing profiles")
	}
}

// TestWritePromHistBuckets pins the histogram exposition: cumulative
// buckets with le = 2^i - 1 upper bounds, a final +Inf, count == total.
func TestWritePromHistBuckets(t *testing.T) {
	var h stm.HistogramSnapshot
	h.Counts[0] = 2 // value 0
	h.Counts[1] = 3 // value 1
	h.Counts[4] = 1 // values 8..15
	var b strings.Builder
	stmobs.WritePromHist(&b, "x", "", h)
	out := b.String()
	for _, want := range []string{
		"# TYPE x histogram\n",
		"x_bucket{le=\"0\"} 2\n",
		"x_bucket{le=\"1\"} 5\n",
		"x_bucket{le=\"3\"} 5\n",
		"x_bucket{le=\"7\"} 5\n",
		"x_bucket{le=\"15\"} 6\n",
		"x_bucket{le=\"+Inf\"} 6\n",
		"x_count 6\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WritePromHist output missing %q in:\n%s", want, out)
		}
	}
}

// TestStatsMapTL2Keys pins the full TL2 key set of StatsMap: a dashboard
// keying on these names must not lose them silently.
func TestStatsMapTL2Keys(t *testing.T) {
	m := newMem(t, stm.TL2)
	if _, err := m.Add(0, 1); err != nil {
		t.Fatal(err)
	}
	sm := stmobs.StatsMap(m)
	for _, key := range []string{
		"engine", "obs_level", "attempts", "commits", "failures", "helps",
		"aborts_tl2_read", "aborts_tl2_lock", "aborts_tl2_validate",
		"tl2_read_only_commits", "tl2_clock_races", "tl2_clock_adoptions",
		"hist_commit_ticks", "hist_read_set", "tick_nanos",
	} {
		if _, ok := sm[key]; !ok {
			t.Errorf("TL2 StatsMap missing key %q", key)
		}
	}
	// And no ST keys bleed in.
	for _, key := range []string{"aborts_st_conflict", "aborts_st_helped"} {
		if _, ok := sm[key]; ok {
			t.Errorf("TL2 StatsMap carries ST key %q", key)
		}
	}
}
