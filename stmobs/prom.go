package stmobs

import (
	"fmt"
	"io"

	stm "github.com/stm-go/stm"
)

// Prometheus text-format export over stm.StatsSnapshot. The metric names
// and label sets below are stable API (DESIGN.md §15): dashboards and
// alerts may depend on them.
//
//	stm_attempts_total / stm_commits_total / stm_failures_total /
//	stm_helps_total                  {memory, engine}
//	stm_aborts_total                 {memory, engine, reason} — the abort
//	                                 taxonomy, one series per reason of the
//	                                 Memory's engine
//	stm_tl2_read_only_commits_total / stm_tl2_clock_races_total /
//	stm_tl2_clock_adoptions_total    {memory, engine} — TL2 memories only
//	stm_obs_level                    {memory, engine} gauge (0=off..3=trace)
//	stm_tick_seconds                 gauge: nominal seconds per coarse tick
//	stm_commit_ticks / stm_abort_ticks / stm_read_set_words /
//	stm_write_set_words              {memory, engine} histograms
//
// Histogram buckets mirror the engine's log2 bins: le="0","1","3","7",…,
// "+Inf" (bin i holds values in [2^(i-1), 2^i)). The _sum series is a
// lower-bound estimate computed from bucket lower bounds — the engine does
// not track exact sums — and is documented as approximate.

// WriteProm writes one Memory's stats snapshot in Prometheus text format,
// labelled memory=name. It takes a fresh snapshot per call, with
// stm.StatsSnapshot's torn-window caveats.
func WriteProm(w io.Writer, name string, m *stm.Memory) {
	s := m.Stats()
	labels := fmt.Sprintf("memory=%q,engine=%q", name, m.Engine().String())

	counter := func(metric string, v uint64) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s{%s} %d\n", metric, metric, labels, v)
	}
	counter("stm_attempts_total", s.Attempts)
	counter("stm_commits_total", s.Commits)
	counter("stm_failures_total", s.Failures)
	counter("stm_helps_total", s.Helps)

	fmt.Fprintf(w, "# TYPE stm_aborts_total counter\n")
	abort := func(reason stm.AbortReason, v uint64) {
		fmt.Fprintf(w, "stm_aborts_total{%s,reason=%q} %d\n", labels, reason.String(), v)
	}
	switch m.Engine() {
	case stm.ST:
		abort(stm.ReasonSTConflict, s.STConflictAborts)
		abort(stm.ReasonSTHelped, s.STHelpedAborts)
	case stm.TL2:
		abort(stm.ReasonTL2Read, s.TL2ReadAborts)
		abort(stm.ReasonTL2Lock, s.TL2LockAborts)
		abort(stm.ReasonTL2Validate, s.TL2ValidateAborts)
		counter("stm_tl2_read_only_commits_total", s.TL2ReadOnlyCommits)
		counter("stm_tl2_clock_races_total", s.TL2ClockRaces)
		counter("stm_tl2_clock_adoptions_total", s.TL2ClockAdoptions)
	}

	fmt.Fprintf(w, "# TYPE stm_obs_level gauge\nstm_obs_level{%s} %d\n",
		labels, uint32(m.ObsLevel()))
	fmt.Fprintf(w, "# TYPE stm_tick_seconds gauge\nstm_tick_seconds %g\n",
		stm.TickInterval.Seconds())

	WritePromHist(w, "stm_commit_ticks", labels, s.CommitTicks)
	WritePromHist(w, "stm_abort_ticks", labels, s.AbortTicks)
	WritePromHist(w, "stm_read_set_words", labels, s.ReadSetSize)
	WritePromHist(w, "stm_write_set_words", labels, s.WriteSetSize)
}

// WritePromHist writes one log2-binned HistogramSnapshot as a Prometheus
// histogram (metric_bucket cumulative series with le upper bounds, an
// approximate lower-bound metric_sum, and metric_count). labels is the
// pre-rendered label body without braces, e.g. `memory="kv",engine="st"`;
// it may be empty. Shared by the stm memory export above and producer
// collectors (the stmserve server metrics) so every histogram on an admin
// endpoint speaks the same bucket layout.
func WritePromHist(w io.Writer, metric, labels string, h stm.HistogramSnapshot) {
	brace := func(extra string) string {
		switch {
		case labels == "" && extra == "":
			return ""
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		}
		return "{" + labels + "," + extra + "}"
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", metric)
	var cum, sum uint64
	for i, c := range h.Counts {
		cum += c
		lo, _ := h.BucketBounds(i)
		sum += c * lo
		if i == stm.HistBins-1 {
			break // the open-ended bin is the +Inf bucket below
		}
		// Bin i holds [2^(i-1), 2^i) over integers: upper bound 2^i - 1.
		var le uint64
		if i > 0 {
			le = 1<<uint(i) - 1
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", metric, brace(fmt.Sprintf("le=\"%d\"", le)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", metric, brace(`le="+Inf"`), cum)
	fmt.Fprintf(w, "%s_sum%s %d\n", metric, brace(""), sum)
	fmt.Fprintf(w, "%s_count%s %d\n", metric, brace(""), cum)
}
