package stmobs

import (
	"expvar"
	"fmt"
	"sort"
	"sync"

	stm "github.com/stm-go/stm"
)

// StatsMap flattens a Memory's stats snapshot into an expvar/JSON-friendly
// map: scalar counters, the abort taxonomy for the Memory's engine, and —
// when histogram-level observability is enabled — the four histograms as
// bin-count arrays. Every call takes a fresh snapshot (torn-window caveats
// per stm.StatsSnapshot).
func StatsMap(m *stm.Memory) map[string]any {
	s := m.Stats()
	out := map[string]any{
		"engine":    m.Engine().String(),
		"obs_level": m.ObsLevel().String(),
		"attempts":  s.Attempts,
		"commits":   s.Commits,
		"failures":  s.Failures,
		"helps":     s.Helps,
	}
	switch m.Engine() {
	case stm.ST:
		out["aborts_st_conflict"] = s.STConflictAborts
		out["aborts_st_helped"] = s.STHelpedAborts
	case stm.TL2:
		out["aborts_tl2_read"] = s.TL2ReadAborts
		out["aborts_tl2_lock"] = s.TL2LockAborts
		out["aborts_tl2_validate"] = s.TL2ValidateAborts
		out["tl2_read_only_commits"] = s.TL2ReadOnlyCommits
		out["tl2_clock_races"] = s.TL2ClockRaces
		out["tl2_clock_adoptions"] = s.TL2ClockAdoptions
	}
	hist := func(key string, h stm.HistogramSnapshot) {
		if h.Total() == 0 {
			return
		}
		bins := make([]uint64, len(h.Counts))
		copy(bins, h.Counts[:])
		out[key] = bins
	}
	hist("hist_commit_ticks", s.CommitTicks)
	hist("hist_abort_ticks", s.AbortTicks)
	hist("hist_read_set", s.ReadSetSize)
	hist("hist_write_set", s.WriteSetSize)
	if s.CommitTicks.Total() != 0 || s.AbortTicks.Total() != 0 {
		out["tick_nanos"] = uint64(stm.TickInterval.Nanoseconds())
	}
	return out
}

// pub is the package registry behind Publish: name → Memory. The expvar
// variable registered for a name reads through this map, so re-publishing a
// name atomically swaps which Memory it serves — and the same registry
// feeds the /metrics endpoint of AdminMux, so expvar and Prometheus can
// never disagree about which Memory a name means.
var pub struct {
	mu   sync.Mutex
	mems map[string]*stm.Memory
}

// Publish registers the Memory under name, so /debug/vars (and anything
// else that walks expvar) serves a live StatsMap snapshot and AdminMux's
// /metrics exports it in Prometheus format. Publishing a name that is
// already registered replaces the Memory it serves — a harness that builds
// a fresh Memory per run can keep publishing it under one stable name. It
// returns an error only when the name is owned by a foreign expvar
// publisher (registered outside this package), which cannot be replaced.
func Publish(name string, m *stm.Memory) error {
	pub.mu.Lock()
	defer pub.mu.Unlock()
	if pub.mems == nil {
		pub.mems = make(map[string]*stm.Memory)
	}
	if _, ours := pub.mems[name]; !ours {
		if expvar.Get(name) != nil {
			return fmt.Errorf("stmobs: expvar name %q is already taken outside stmobs", name)
		}
		expvar.Publish(name, expvar.Func(func() any {
			pub.mu.Lock()
			mem := pub.mems[name]
			pub.mu.Unlock()
			if mem == nil {
				return nil
			}
			return StatsMap(mem)
		}))
	}
	pub.mems[name] = m
	return nil
}

// published snapshots the registry, names sorted, for the /metrics walk.
func published() (names []string, mems []*stm.Memory) {
	pub.mu.Lock()
	defer pub.mu.Unlock()
	for name := range pub.mems {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mems = append(mems, pub.mems[name])
	}
	return names, mems
}
