package stmobs

import (
	"expvar"

	stm "github.com/stm-go/stm"
)

// StatsMap flattens a Memory's stats snapshot into an expvar/JSON-friendly
// map: scalar counters, the abort taxonomy for the Memory's engine, and —
// when histogram-level observability is enabled — the four histograms as
// bin-count arrays. Every call takes a fresh snapshot (torn-window caveats
// per stm.StatsSnapshot).
func StatsMap(m *stm.Memory) map[string]any {
	s := m.Stats()
	out := map[string]any{
		"engine":    m.Engine().String(),
		"obs_level": m.ObsLevel().String(),
		"attempts":  s.Attempts,
		"commits":   s.Commits,
		"failures":  s.Failures,
		"helps":     s.Helps,
	}
	switch m.Engine() {
	case stm.ST:
		out["aborts_st_conflict"] = s.STConflictAborts
		out["aborts_st_helped"] = s.STHelpedAborts
	case stm.TL2:
		out["aborts_tl2_read"] = s.TL2ReadAborts
		out["aborts_tl2_lock"] = s.TL2LockAborts
		out["aborts_tl2_validate"] = s.TL2ValidateAborts
		out["tl2_read_only_commits"] = s.TL2ReadOnlyCommits
		out["tl2_clock_races"] = s.TL2ClockRaces
		out["tl2_clock_adoptions"] = s.TL2ClockAdoptions
	}
	hist := func(key string, h stm.HistogramSnapshot) {
		if h.Total() == 0 {
			return
		}
		bins := make([]uint64, len(h.Counts))
		copy(bins, h.Counts[:])
		out[key] = bins
	}
	hist("hist_commit_ticks", s.CommitTicks)
	hist("hist_abort_ticks", s.AbortTicks)
	hist("hist_read_set", s.ReadSetSize)
	hist("hist_write_set", s.WriteSetSize)
	if s.CommitTicks.Total() != 0 || s.AbortTicks.Total() != 0 {
		out["tick_nanos"] = uint64(stm.TickInterval.Nanoseconds())
	}
	return out
}

// Publish registers the Memory under name with the expvar registry, so
// /debug/vars (and anything else that walks expvar) serves a live StatsMap
// snapshot. Like expvar.Publish it panics if name is already registered —
// publish each Memory once, at setup time.
func Publish(name string, m *stm.Memory) {
	expvar.Publish(name, expvar.Func(func() any { return StatsMap(m) }))
}
