package stmobs

import (
	"sync"
	"sync/atomic"

	stm "github.com/stm-go/stm"
)

// EventCounter is the cheapest useful Observer: per-kind event tallies with
// no locking and no allocation, suitable for leaving attached in
// production at stm.ObsCounters. It also serves as a no-op trace-free
// observer for benchmarks measuring the seam's delivery cost.
type EventCounter struct {
	counts [6]atomic.Uint64 // indexed by stm.EventKind
}

// ObsEvent implements stm.Observer.
func (c *EventCounter) ObsEvent(e *stm.Event) {
	if int(e.Kind) < len(c.counts) {
		c.counts[e.Kind].Add(1)
	}
}

// Count returns how many events of kind k have been delivered.
func (c *EventCounter) Count(k stm.EventKind) uint64 {
	if int(k) >= len(c.counts) {
		return 0
	}
	return c.counts[k].Load()
}

// RingTracer keeps the last capacity sampled traces in a ring, for the
// stmserve/chaos-harness style of consumer: cheap enough to leave on, and
// when something goes wrong the recent transaction footprints, abort
// reasons, and timings are already in memory. It implements both
// stm.Observer (events are ignored) and stm.TraceObserver, so it can be
// registered directly as the ObsConfig.Observer at stm.ObsTrace.
type RingTracer struct {
	mu    sync.Mutex
	buf   []stm.TraceEvent
	next  int
	total uint64
}

// NewRingTracer returns a tracer retaining the last capacity traces
// (capacity < 1 is treated as 1).
func NewRingTracer(capacity int) *RingTracer {
	if capacity < 1 {
		capacity = 1
	}
	return &RingTracer{buf: make([]stm.TraceEvent, 0, capacity)}
}

// ObsEvent implements stm.Observer; the ring keeps traces, not events.
func (t *RingTracer) ObsEvent(e *stm.Event) {}

// ObsTrace implements stm.TraceObserver: record one sampled trace,
// evicting the oldest when full.
func (t *RingTracer) ObsTrace(tr *stm.TraceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, *tr)
		return
	}
	t.buf[t.next] = *tr
	t.next = (t.next + 1) % cap(t.buf)
}

// Traces returns a copy of the retained traces, oldest first.
func (t *RingTracer) Traces() []stm.TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]stm.TraceEvent, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Total returns how many traces have been delivered since construction
// (including evicted ones).
func (t *RingTracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
