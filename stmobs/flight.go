package stmobs

import (
	"fmt"
	"io"
	"sync/atomic"

	stm "github.com/stm-go/stm"
)

// The flight recorder: an always-on fixed-size lock-free ring of recent
// events, for the dump-on-failure style of observability. Where the
// RingTracer samples rare, rich TraceEvents under a mutex, the flight
// recorder takes the opposite trade: every event, four scalar words, no
// locks — recording is one atomic counter bump plus four relaxed atomic
// stores, cheap enough to leave on every command of a production server.
// When something dies (SIGQUIT, a panic, a simulation invariant violation)
// the last len(ring) events are already in memory, ready to dump next to
// the replay seed.
//
// The lock-freedom costs slot-level atomicity: a reader racing a writer
// that laps the ring may observe a torn slot (each of the four words is
// individually consistent, but they may belong to different events). A
// crash dump tolerates that; a metrics pipeline should use the stmserve
// metrics or StatsMap instead.

// FlightEvent is one recorded event. Kind namespaces are producer-defined;
// the FlightStm* kinds are reserved for the stm.Observer integration, and
// stmserve documents its command kinds in DESIGN.md §15.
type FlightEvent struct {
	// Ticks is the coarse-tick timestamp at record time (stm.NowTicks;
	// multiply by stm.TickInterval for nominal wall time). 48 bits are
	// stored, which at the nominal tick rate wraps after centuries.
	Ticks uint64
	// Kind identifies the event within its producer's namespace.
	Kind uint16
	// Conn is the connection / actor / attempt identity, 0 when none.
	Conn uint64
	// A and B are kind-specific payload words.
	A, B uint64
}

// Reserved flight-event kinds recorded by the stm.Observer integration.
// Producers defining their own kinds should stay below 0xFF00.
const (
	// FlightStmAbort is a failed transaction attempt: Conn is the attempt
	// Seq, A the stm.AbortReason, B the failing word as an int64 (or -1).
	FlightStmAbort uint16 = 0xFF00 + iota
	// FlightStmValidationFail is a validation/admission failure inside an
	// attempt: Conn is the attempt Seq, B the failing word as an int64.
	FlightStmValidationFail
)

// String renders the event: reserved stm kinds decoded, everything else as
// raw fields (producers with richer vocabularies pass a describe function
// to Dump instead).
func (e FlightEvent) String() string {
	switch e.Kind {
	case FlightStmAbort:
		return fmt.Sprintf("t=%d stm-abort seq=%d reason=%s addr=%d",
			e.Ticks, e.Conn, stm.AbortReason(e.A), int64(e.B))
	case FlightStmValidationFail:
		return fmt.Sprintf("t=%d stm-validation-fail seq=%d addr=%d",
			e.Ticks, e.Conn, int64(e.B))
	}
	return fmt.Sprintf("t=%d kind=0x%04x conn=%d a=%d b=%d", e.Ticks, e.Kind, e.Conn, e.A, e.B)
}

// FlightRecorder is the ring. The zero value is not usable; construct with
// NewFlightRecorder. All methods are safe for concurrent use from any
// number of goroutines.
type FlightRecorder struct {
	mask  uint64
	head  atomic.Uint64 // next sequence number == total events recorded
	slots [][4]atomic.Uint64
}

// NewFlightRecorder returns a recorder retaining the last capacity events
// (rounded up to a power of two, minimum 16). It starts the coarse tick
// source so event timestamps advance.
func NewFlightRecorder(capacity int) *FlightRecorder {
	n := 16
	for n < capacity {
		n <<= 1
	}
	stm.StartTicks()
	return &FlightRecorder{mask: uint64(n - 1), slots: make([][4]atomic.Uint64, n)}
}

// Record appends one event: lock-free, allocation-free, ~five atomic word
// operations.
func (f *FlightRecorder) Record(kind uint16, conn, a, b uint64) {
	seq := f.head.Add(1) - 1
	s := &f.slots[seq&f.mask]
	s[0].Store(stm.NowTicks()<<16 | uint64(kind))
	s[1].Store(conn)
	s[2].Store(a)
	s[3].Store(b)
}

// Total returns how many events have been recorded since construction
// (including overwritten ones).
func (f *FlightRecorder) Total() uint64 { return f.head.Load() }

// Cap returns the ring capacity in events.
func (f *FlightRecorder) Cap() int { return len(f.slots) }

// Snapshot copies the retained events, oldest first. Slots being written
// concurrently may read torn (see the package comment on the trade).
func (f *FlightRecorder) Snapshot() []FlightEvent {
	head := f.head.Load()
	n := uint64(len(f.slots))
	if head < n {
		n = head
	}
	out := make([]FlightEvent, 0, n)
	for i := uint64(0); i < n; i++ {
		s := &f.slots[(head-n+i)&f.mask]
		w0 := s[0].Load()
		out = append(out, FlightEvent{
			Ticks: w0 >> 16,
			Kind:  uint16(w0),
			Conn:  s[1].Load(),
			A:     s[2].Load(),
			B:     s[3].Load(),
		})
	}
	return out
}

// Dump writes the retained events oldest-first, one per line, through
// describe (nil uses FlightEvent.String). The header line carries the
// event count and the tick-to-wall conversion so a dump is interpretable
// on its own.
func (f *FlightRecorder) Dump(w io.Writer, describe func(FlightEvent) string) error {
	if describe == nil {
		describe = FlightEvent.String
	}
	events := f.Snapshot()
	if _, err := fmt.Fprintf(w, "flight recorder: %d events retained (of %d recorded, 1 tick ≈ %v nominal)\n",
		len(events), f.Total(), stm.TickInterval); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "  %s\n", describe(e)); err != nil {
			return err
		}
	}
	return nil
}

// ObsEvent implements stm.Observer: abort and validation-failure events are
// recorded (commits would flood the ring with the uninteresting common
// case); everything else is ignored. Register the recorder as the
// ObsConfig.Observer at stm.ObsCounters or above to capture engine-level
// failure context alongside producer events.
func (f *FlightRecorder) ObsEvent(e *stm.Event) {
	switch e.Kind {
	case stm.EvAbort:
		f.Record(FlightStmAbort, e.Seq, uint64(e.Reason), uint64(int64(e.Addr)))
	case stm.EvValidationFail:
		f.Record(FlightStmValidationFail, e.Seq, 0, uint64(int64(e.Addr)))
	}
}
