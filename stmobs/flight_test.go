package stmobs_test

import (
	"strings"
	"sync"
	"testing"

	stm "github.com/stm-go/stm"
	"github.com/stm-go/stm/stmobs"
)

func TestFlightRecorderOrderAndWrap(t *testing.T) {
	f := stmobs.NewFlightRecorder(16)
	if f.Cap() != 16 {
		t.Fatalf("Cap = %d, want 16", f.Cap())
	}
	for i := 0; i < 40; i++ {
		f.Record(1, uint64(i), uint64(i*2), 0)
	}
	if f.Total() != 40 {
		t.Errorf("Total = %d, want 40", f.Total())
	}
	events := f.Snapshot()
	if len(events) != 16 {
		t.Fatalf("retained %d events, want 16", len(events))
	}
	// Oldest first: the newest 16 of the 40 recorded.
	for i, e := range events {
		if want := uint64(24 + i); e.Conn != want || e.A != 2*want {
			t.Errorf("events[%d] = conn=%d a=%d, want conn=%d a=%d", i, e.Conn, e.A, want, 2*want)
		}
	}
}

func TestFlightRecorderCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 16}, {1, 16}, {16, 16}, {17, 32}, {1000, 1024},
	} {
		if got := stmobs.NewFlightRecorder(tc.ask).Cap(); got != tc.want {
			t.Errorf("NewFlightRecorder(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestFlightRecorderDump(t *testing.T) {
	f := stmobs.NewFlightRecorder(16)
	f.Record(7, 1, 2, 3)
	var b strings.Builder
	if err := f.Dump(&b, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "flight recorder: 1 events retained") {
		t.Errorf("dump header missing: %q", out)
	}
	if !strings.Contains(out, "kind=0x0007 conn=1 a=2 b=3") {
		t.Errorf("dump body missing default rendering: %q", out)
	}
	// A producer vocabulary replaces the default rendering.
	b.Reset()
	_ = f.Dump(&b, func(e stmobs.FlightEvent) string { return "custom" })
	if !strings.Contains(b.String(), "  custom\n") {
		t.Errorf("describe func not used: %q", b.String())
	}
}

// TestFlightRecorderConcurrent exercises the lock-free ring under the race
// detector: writers lapping the ring while readers snapshot and dump.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := stmobs.NewFlightRecorder(32)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				f.Record(uint16(w+1), uint64(i), 0, 0)
				if i%500 == 0 {
					_ = f.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if f.Total() != 8000 {
		t.Errorf("Total = %d, want 8000", f.Total())
	}
	if got := len(f.Snapshot()); got != 32 {
		t.Errorf("retained %d, want 32", got)
	}
}

// TestFlightRecorderObserver registers the recorder on a Memory and forces
// aborts; the ring must retain stm-abort events with the engine's reason.
func TestFlightRecorderObserver(t *testing.T) {
	m, err := stm.New(8, stm.WithEngine(stm.TL2))
	if err != nil {
		t.Fatal(err)
	}
	f := stmobs.NewFlightRecorder(64)
	m.Observe(stm.ObsConfig{Level: stm.ObsCounters, Observer: f})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, _ = m.Add(0, 1) // one hot word: contention guarantees aborts
			}
		}()
	}
	wg.Wait()
	if m.Stats().Failures == 0 {
		t.Skip("no aborts this run; nothing to assert")
	}
	found := false
	for _, e := range f.Snapshot() {
		if e.Kind == stmobs.FlightStmAbort {
			found = true
			if !strings.Contains(e.String(), "stm-abort") {
				t.Errorf("abort event renders as %q", e.String())
			}
		}
	}
	if !found {
		t.Errorf("aborts occurred (%d failures) but none recorded", m.Stats().Failures)
	}
}
