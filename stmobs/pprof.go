package stmobs

import (
	"context"
	"runtime/pprof"

	stm "github.com/stm-go/stm"
)

// Labels returns pprof labels identifying transaction work on m at the
// named site: "stm_engine" (the Memory's commit protocol) and "stm_site"
// (the caller-chosen transaction-site name). Attach them with pprof.Do, or
// use the Do convenience wrapper below.
func Labels(m *stm.Memory, site string) pprof.LabelSet {
	return pprof.Labels("stm_engine", m.Engine().String(), "stm_site", site)
}

// Do runs fn on the current goroutine with Labels(m, site) attached, so
// CPU and goroutine profiles attribute the samples to the transaction site
// — which engine the time went to, and which logical workload. Wrap worker
// loops, not individual transactions: the labels cost a context allocation
// per call, amortized over everything fn runs.
func Do(ctx context.Context, m *stm.Memory, site string, fn func(ctx context.Context)) {
	pprof.Do(ctx, Labels(m, site), fn)
}
