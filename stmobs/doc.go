// Package stmobs builds export surfaces on the stm package's observability
// seam: an expvar-compatible publisher, a ring buffer for sampled
// per-transaction traces, event counters, and runtime/pprof label tagging
// for goroutines that run transactions.
//
// # Observing a Memory
//
// The seam itself lives on stm.Memory (Observe, Stats, DebugString) and
// costs nothing until enabled: every hook on the attempt path is one
// predicted branch while the level is stm.ObsOff. A typical production
// setup enables counters and histograms, publishes them over expvar, and
// keeps a small trace ring for incident debugging:
//
//	tracer := stmobs.NewRingTracer(256)
//	m.Observe(stm.ObsConfig{
//		Level:       stm.ObsTrace,
//		Observer:    tracer,
//		SampleEvery: 1024,
//	})
//	stmobs.Publish("stm", m) // GET /debug/vars → {"stm": {...}, ...}
//
// Counters-only observation (stm.ObsCounters, typically with an
// EventCounter or no observer at all) adds the abort-reason taxonomy to
// m.Stats() at a measured overhead of a few percent on the hottest paths;
// the histogram and trace levels buy latency distributions and sampled
// footprints for a little more. BENCH_obs.json tracks the exact overhead of
// every level on every engine, and the stmbench obs suite regression-gates
// it.
//
// To attribute CPU profiles to transaction sites, wrap workers with Do,
// which tags the goroutine with pprof labels for the Memory's engine and
// the site name:
//
//	go stmobs.Do(ctx, m, "transfer-worker", func(ctx context.Context) {
//		for { ... m.Atomically(...) ... }
//	})
//
// See DESIGN.md §12 for the seam's architecture: the per-engine event
// matrix, the abort taxonomy, histogram binning, and the coarse-ticks
// precision contract behind the latency numbers.
package stmobs
