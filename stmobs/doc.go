// Package stmobs builds export surfaces on the stm package's observability
// seam: an HTTP admin endpoint (Prometheus /metrics, expvar /debug/vars,
// net/http/pprof), a lock-free flight recorder for dump-on-failure
// debugging, a ring buffer for sampled per-transaction traces, event
// counters, and runtime/pprof label tagging for goroutines that run
// transactions.
//
// # Observing a Memory
//
// The seam itself lives on stm.Memory (Observe, Stats, DebugString) and
// costs nothing until enabled: every hook on the attempt path is one
// predicted branch while the level is stm.ObsOff. A typical production
// setup enables counters and histograms, publishes them over expvar, and
// keeps a small trace ring for incident debugging:
//
//	tracer := stmobs.NewRingTracer(256)
//	m.Observe(stm.ObsConfig{
//		Level:       stm.ObsTrace,
//		Observer:    tracer,
//		SampleEvery: 1024,
//	})
//	stmobs.Publish("stm", m) // GET /debug/vars → {"stm": {...}, ...}
//
// Counters-only observation (stm.ObsCounters, typically with an
// EventCounter or no observer at all) adds the abort-reason taxonomy to
// m.Stats() at a measured overhead of a few percent on the hottest paths;
// the histogram and trace levels buy latency distributions and sampled
// footprints for a little more. BENCH_obs.json tracks the exact overhead of
// every level on every engine, and the stmbench obs suite regression-gates
// it.
//
// # The admin endpoint
//
// AdminMux mounts the three operational endpoints a deployment needs on
// one mux — Prometheus text-format /metrics over every Published Memory
// (plus any producer Collector, e.g. stmserve.Server's per-command
// metrics), expvar JSON at /debug/vars over the same registry, and the
// standard /debug/pprof profiles. ServeAdmin binds it on its own
// listener, deliberately separate from any serving port so scraping and
// profiling survive a saturated data plane:
//
//	stmobs.Publish("kv", m)
//	ln, err := stmobs.ServeAdmin("127.0.0.1:7172")
//	if err != nil { ... }
//	defer ln.Close()
//	// curl -s localhost:7172/metrics       → stm_attempts_total{memory="kv",...} ...
//	// curl -s localhost:7172/debug/vars    → {"kv": {...}}
//	// go tool pprof localhost:7172/debug/pprof/profile?seconds=5
//
// Publishing a name again replaces the Memory it serves — a harness that
// builds a fresh Memory per run keeps one stable metric name — and the
// expvar and Prometheus views read through the same registry, so they can
// never disagree about which Memory a name means.
//
// # The flight recorder
//
// FlightRecorder is the dump-on-failure complement to the metrics above: a
// fixed-size lock-free ring of recent four-word events, cheap enough
// (one atomic counter bump, four relaxed stores) to leave always-on under
// every command of a production server. Producers Record their own event
// vocabulary; registered as an stm.Observer it also retains recent engine
// aborts. When something dies — SIGQUIT, a panic, a simulation invariant
// violation — Dump writes the retained history, newest context included,
// next to whatever replay information the failure printed. cmd/stmserve
// and the simulation harness wire all three dump sites.
//
// To attribute CPU profiles to transaction sites, wrap workers with Do,
// which tags the goroutine with pprof labels for the Memory's engine and
// the site name:
//
//	go stmobs.Do(ctx, m, "transfer-worker", func(ctx context.Context) {
//		for { ... m.Atomically(...) ... }
//	})
//
// See DESIGN.md §12 for the seam's architecture: the per-engine event
// matrix, the abort taxonomy, histogram binning, and the coarse-ticks
// precision contract behind the latency numbers — and §15 for the admin
// endpoint's stable metric names and the flight recorder's design trade.
package stmobs
