package stmobs

import (
	"expvar"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
)

// The HTTP admin surface: one mux carrying the three operational endpoints
// a production deployment needs, mountable beside any server on an opt-in
// listener (stmserve -admin, stmsim -admin):
//
//	/metrics       Prometheus text format: every Memory registered with
//	               Publish, plus any producer Collectors (the stmserve
//	               per-command metrics)
//	/debug/vars    expvar JSON (the same Publish registry as StatsMap)
//	/debug/pprof/  the standard runtime profiles (CPU, heap, goroutine,
//	               block, mutex, trace) — pair with Do/Labels so profiles
//	               attribute samples to transaction sites
//
// The admin surface is deliberately a separate listener from the serving
// port: scraping, profiling, and dumping must keep working when the data
// plane is saturated, and must be firewallable independently of it.

// Collector adds producer-specific samples to an admin endpoint's
// /metrics: WritePrometheus appends Prometheus text-format families.
// stmserve.Server implements it.
type Collector interface {
	WritePrometheus(w io.Writer)
}

// AdminMux builds the admin mux: /metrics over every Published Memory plus
// the given Collectors, /debug/vars, and /debug/pprof/*.
func AdminMux(extra ...Collector) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		names, mems := published()
		for i, name := range names {
			WriteProm(w, name, mems[i])
		}
		for _, c := range extra {
			c.WritePrometheus(w)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// ServeAdmin listens on addr and serves AdminMux in a background
// goroutine. It returns the bound listener — Close it to stop serving, or
// read its Addr for the actual port when addr asked for :0.
func ServeAdmin(addr string, extra ...Collector) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: AdminMux(extra...)}
	go srv.Serve(ln)
	return ln, nil
}
