package stm_test

// Tests for the public observability surface: the WithObs/Observe API, the
// zero-allocation contract with hooks off and at counters level (with a
// registered observer — the contract DESIGN.md §12 documents), and the
// engine-tagged events crossing the API boundary.

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	stm "github.com/stm-go/stm"
)

// countObserver tallies events without allocating — the shape a production
// counters-level observer has.
type countObserver struct {
	begins, commits, aborts atomic.Uint64
}

func (o *countObserver) ObsEvent(e *stm.Event) {
	switch e.Kind {
	case stm.EvBegin:
		o.begins.Add(1)
	case stm.EvCommit:
		o.commits.Add(1)
	case stm.EvAbort:
		o.aborts.Add(1)
	}
}

func TestObsAllocFreeHooks(t *testing.T) {
	// Hooks off: the observability seam must not move the zero-allocation
	// fast paths.
	m := mustNew(t, 8)
	if m.ObsLevel() != stm.ObsOff {
		t.Fatalf("fresh Memory at level %v, want off", m.ObsLevel())
	}
	assertAllocs(t, "Add/obs-off", 0, func() {
		if _, err := m.Add(1, 1); err != nil {
			t.Fatal(err)
		}
	})

	// Counters with a registered observer: event delivery rides the pooled
	// record's scratch, so the contract holds at ObsCounters too — on both
	// engines.
	for _, eng := range stm.Engines() {
		obs := &countObserver{}
		m := mustNewEngine(t, 8, eng)
		m.Observe(stm.ObsConfig{Level: stm.ObsCounters, Observer: obs})
		assertAllocs(t, eng.String()+"/Add/obs-counters", 0, func() {
			if _, err := m.Add(1, 1); err != nil {
				t.Fatal(err)
			}
		})
		tx, err := m.Prepare([]int{2, 5})
		if err != nil {
			t.Fatal(err)
		}
		var old [2]uint64
		bump := func(o, n []uint64) { n[0], n[1] = o[0]+1, o[1]+1 }
		assertAllocs(t, eng.String()+"/RunInto/obs-counters", 0, func() { tx.RunInto(bump, old[:]) })
		if obs.begins.Load() == 0 || obs.commits.Load() == 0 {
			t.Errorf("%v: observer saw %d begins / %d commits, want > 0",
				eng, obs.begins.Load(), obs.commits.Load())
		}
	}
}

func TestObsWithObsOption(t *testing.T) {
	obs := &countObserver{}
	m, err := stm.New(8, stm.WithObs(stm.ObsConfig{Level: stm.ObsCounters, Observer: obs}))
	if err != nil {
		t.Fatal(err)
	}
	if m.ObsLevel() != stm.ObsCounters {
		t.Fatalf("level = %v, want counters", m.ObsLevel())
	}
	if _, err := m.Add(0, 1); err != nil {
		t.Fatal(err)
	}
	if obs.begins.Load() != 1 || obs.commits.Load() != 1 {
		t.Errorf("observer saw %d begins / %d commits, want 1/1", obs.begins.Load(), obs.commits.Load())
	}
}

func TestObsDebugString(t *testing.T) {
	for _, eng := range stm.Engines() {
		m := mustNewEngine(t, 8, eng)
		m.Observe(stm.ObsConfig{Level: stm.ObsHistograms})
		for i := 0; i < 10; i++ {
			if _, err := m.Add(i%8, 1); err != nil {
				t.Fatal(err)
			}
		}
		s := m.DebugString()
		for _, want := range []string{"engine=" + eng.String(), "commits=10", "commit-ticks"} {
			if !strings.Contains(s, want) {
				t.Errorf("%v DebugString missing %q:\n%s", eng, want, s)
			}
		}
	}
}

// TestObsSnapshotWhileMixedLoad drives the public API the way a live system
// does — snapshots, resets, and reconfiguration racing transactions on both
// engines — as a race-detector target.
func TestObsSnapshotWhileMixedLoad(t *testing.T) {
	for _, eng := range stm.Engines() {
		m := mustNewEngine(t, 16, eng)
		obs := &countObserver{}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := m.Add(i%4, 1); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		for i := 0; i < 100; i++ {
			lvl := stm.ObsLevel(uint32(i % 4))
			m.Observe(stm.ObsConfig{Level: lvl, Observer: obs})
			_ = m.Stats()
			if i%10 == 0 {
				m.ResetStats()
			}
		}
		close(stop)
		wg.Wait()
		if got := m.ObsLevel(); got != stm.ObsTrace {
			t.Errorf("%v: final level = %v, want trace", eng, got)
		}
	}
}
