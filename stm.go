package stm

import (
	"sync/atomic"
	"time"

	"github.com/stm-go/stm/internal/backoff"
	"github.com/stm-go/stm/internal/core"
)

// UpdateFunc computes new values for a transaction's data set from the old
// values, index-aligned with the addresses the caller declared (in the
// caller's order). It must be deterministic and side-effect free, and must
// return exactly len(old) values.
type UpdateFunc func(old []uint64) []uint64

// Validation errors. These alias the engine's sentinels so errors.Is works
// across the API boundary.
var (
	ErrAddrRange    = core.ErrAddrRange
	ErrAddrOrder    = core.ErrAddrOrder
	ErrEmptyDataSet = core.ErrEmptyDataSet
	ErrNilUpdate    = core.ErrNilUpdate
)

// Memory is a software transactional memory: a fixed-size vector of uint64
// words supporting static multi-word transactions. All methods are safe for
// concurrent use by any number of goroutines.
type Memory struct {
	eng   *core.Memory
	seeds atomic.Uint64 // decorrelates per-call backoff
}

// New returns a Memory of size words, all zero.
func New(size int) (*Memory, error) {
	eng, err := core.NewMemory(size)
	if err != nil {
		return nil, err
	}
	return &Memory{eng: eng}, nil
}

// Size returns the number of words.
func (m *Memory) Size() int { return m.eng.Size() }

// Peek reads one word without transactional protection: an atomic read of
// that word with no cross-word consistency guarantee. Use ReadAll for a
// consistent multi-word snapshot.
func (m *Memory) Peek(loc int) uint64 { return m.eng.Peek(loc) }

// Stats returns a snapshot of protocol counters (attempts, commits,
// failures, helps) accumulated by this Memory.
func (m *Memory) Stats() core.StatsSnapshot { return m.eng.Stats() }

// Atomically applies f to the words at addrs as one atomic transaction,
// retrying with backoff until it commits. It returns the old values (the
// consistent snapshot f's result was computed from), index-aligned with
// addrs. addrs may be in any order but must not contain duplicates.
//
// For hot paths that reuse a data set, Prepare once and call Tx.Run — or
// Tx.RunInto for the allocation-free variant.
func (m *Memory) Atomically(addrs []int, f UpdateFunc) ([]uint64, error) {
	tx, err := m.Prepare(addrs)
	if err != nil {
		return nil, err
	}
	if f == nil {
		return nil, ErrNilUpdate
	}
	return tx.Run(f), nil
}

// Try makes a single transaction attempt (no retry). ok=false means the
// attempt was blocked by a conflicting transaction — which this call helped
// to completion — and the caller should retry.
func (m *Memory) Try(addrs []int, f UpdateFunc) (old []uint64, ok bool, err error) {
	tx, err := m.Prepare(addrs)
	if err != nil {
		return nil, false, err
	}
	if f == nil {
		return nil, false, ErrNilUpdate
	}
	old, ok = tx.Try(f)
	return old, ok, nil
}

// newBackoff returns a retry backoff decorrelated across calls.
func (m *Memory) newBackoff() *backoff.Exp {
	return backoff.New(500*time.Nanosecond, 100*time.Microsecond, m.seeds.Add(1)*0x9e3779b97f4a7c15)
}
