package stm

import (
	"sync"
	"time"

	"github.com/stm-go/stm/contention"
	"github.com/stm-go/stm/internal/backoff"
	"github.com/stm-go/stm/internal/core"
)

// UpdateFunc computes new values for a transaction's data set from the old
// values, index-aligned with the addresses the caller declared (in the
// caller's order). It must be deterministic and side-effect free, and must
// return exactly len(old) values.
type UpdateFunc func(old []uint64) []uint64

// Validation errors. These alias the engine's sentinels so errors.Is works
// across the API boundary.
var (
	ErrAddrRange    = core.ErrAddrRange
	ErrAddrOrder    = core.ErrAddrOrder
	ErrEmptyDataSet = core.ErrEmptyDataSet
	ErrNilUpdate    = core.ErrNilUpdate

	// ErrDupAddr reports a data set containing the same address twice.
	ErrDupAddr = core.ErrDupAddr

	// ErrOutOfWords reports that Alloc/AllocWords cannot fit the request
	// in the Memory's word vector.
	ErrOutOfWords = core.ErrOutOfWords
)

// Memory is a software transactional memory: a fixed-size vector of uint64
// words supporting static multi-word transactions. All methods are safe for
// concurrent use by any number of goroutines.
type Memory struct {
	eng *core.Memory

	// alloc hands out word ranges for typed variables (Alloc, AllocWords).
	// It bump-allocates from address 0; programs that address words
	// directly alongside typed variables should reserve their raw region
	// first with AllocWords.
	alloc *core.Allocator

	// pol decides how retry loops react to contention; see the contention
	// package. allCommits caches whether pol opted into clean-commit
	// reports (contention.CleanCommitObserver), deciding once whether the
	// uncontended fast path must build a report at all.
	pol        contention.Policy
	allCommits bool

	confPool sync.Pool // of *contention.Conflict; see hotpath.go
	bufPool  sync.Pool // of *[]uint64 word staging buffers; see hotpath.go
	dtxPool  sync.Pool // of *DTx dynamic-transaction handles; see dtx.go
}

// Option configures a Memory at construction.
type Option func(*config)

type config struct {
	policy contention.Policy
	engine Engine
	obs    *core.ObsConfig
}

// WithPolicy selects the contention-management policy for the Memory. The
// policy instance is shared by every transaction on the Memory and must be
// safe for concurrent use; passing nil selects the default
// (contention.Default, capped exponential backoff).
func WithPolicy(p contention.Policy) Option {
	return func(c *config) { c.policy = p }
}

// WithPolicyFactory is WithPolicy with late binding: factory is invoked
// once, at New time, to build this Memory's policy. Use it when one
// configuration constructs many Memories — each gets a fresh policy
// instance, so windowed counters and serialization tokens are never shared
// across Memories. A nil factory (or a factory returning nil) selects the
// default policy.
func WithPolicyFactory(factory func() contention.Policy) Option {
	return func(c *config) {
		if factory != nil {
			c.policy = factory()
		}
	}
}

// New returns a Memory of size words, all zero, configured by opts.
func New(size int, opts ...Option) (*Memory, error) {
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	eng, err := core.NewMemoryEngine(size, cfg.engine)
	if err != nil {
		return nil, err
	}
	if cfg.policy == nil {
		cfg.policy = contention.Default()
	}
	if cfg.obs != nil {
		eng.Observe(*cfg.obs)
	}
	return &Memory{
		eng:        eng,
		alloc:      core.NewAllocator(size),
		pol:        cfg.policy,
		allCommits: contention.WantsCleanCommits(cfg.policy),
	}, nil
}

// AllocWords reserves n contiguous words from the Memory's word allocator
// and returns the base address. This is the engine-level form of Alloc: use
// it to carve a raw region that coexists with typed variables (the
// allocator hands out each word at most once). Allocations are aligned and
// never freed; see internal/core's Allocator.
func (m *Memory) AllocWords(n int) (int, error) {
	return m.alloc.Alloc(n)
}

// WordsAllocated returns the allocator's high-water mark: how many words of
// the Memory have been handed to Alloc/AllocWords callers (including
// alignment padding).
func (m *Memory) WordsAllocated() int { return m.alloc.Allocated() }

// Size returns the number of words.
func (m *Memory) Size() int { return m.eng.Size() }

// Peek reads one word without transactional protection: an atomic read of
// that word with no cross-word consistency guarantee. Use ReadAll for a
// consistent multi-word snapshot.
func (m *Memory) Peek(loc int) uint64 { return m.eng.Peek(loc) }

// Stats returns a snapshot of the Memory's counters: the protocol counters
// (attempts, commits, failures, and — on the ST engine only — helps),
// plus, when observability is enabled (see Observe), the per-engine abort
// taxonomy, TL2 telemetry, and latency/set-size histograms. Counter
// semantics are per engine and documented on StatsSnapshot, as is the
// torn-window contract: the snapshot is not an atomic cut across shards.
func (m *Memory) Stats() core.StatsSnapshot { return m.eng.Stats() }

// ResetStats zeroes every counter Stats reports — protocol counters,
// abort-taxonomy and TL2 telemetry counters, histogram bins, and the
// per-word conflict counters — opening a fresh observation window. It is
// safe to call while transactions run: the counters are advisory, and a
// bump racing the reset lands in either window. Benchmark sweeps and
// adaptive consumers use it to read rates per window instead of monotonic
// totals.
func (m *Memory) ResetStats() { m.eng.ResetStats() }

// ConflictCount returns the number of failed attempts that died at loc (an
// ownership or commit-lock conflict, or a failed read validation, depending
// on the engine) since construction or the last ResetStats — the
// per-word conflict telemetry feeding contention policies. A hot word is
// one whose count grows fastest.
func (m *Memory) ConflictCount(loc int) uint64 { return m.eng.ConflictCount(loc) }

// Policy returns the Memory's contention-management policy.
func (m *Memory) Policy() contention.Policy { return m.pol }

// Engine returns the commit protocol this Memory was built with.
func (m *Memory) Engine() Engine { return m.eng.EngineKind() }

// AtomicUpdate applies f to the words at addrs as one static transaction,
// retrying under the contention policy until it commits. It returns the old
// values (the consistent snapshot f's result was computed from),
// index-aligned with addrs. addrs may be in any order but must not contain
// duplicates.
//
// For hot paths that reuse a data set, Prepare once and call Tx.Run — or
// Tx.RunInto for the allocation-free variant. For transactions whose data
// set is not known up front, use Atomically, the dynamic form.
func (m *Memory) AtomicUpdate(addrs []int, f UpdateFunc) ([]uint64, error) {
	tx, err := m.Prepare(addrs)
	if err != nil {
		return nil, err
	}
	if f == nil {
		return nil, ErrNilUpdate
	}
	return tx.Run(f), nil
}

// Try makes a single transaction attempt (no retry). ok=false means the
// attempt was blocked by a conflicting transaction — which this call helped
// to completion — and the caller should retry.
func (m *Memory) Try(addrs []int, f UpdateFunc) (old []uint64, ok bool, err error) {
	tx, err := m.Prepare(addrs)
	if err != nil {
		return nil, false, err
	}
	if f == nil {
		return nil, false, ErrNilUpdate
	}
	old, ok = tx.Try(f)
	return old, ok, nil
}

// newCondBackoff returns the backoff used between guard re-evaluations in
// RunWhen-style loops. Condition waits are not contention — the transaction
// committed; the world just isn't ready — so they stay on a plain backoff
// rather than going through the contention policy.
func (m *Memory) newCondBackoff() *backoff.Exp {
	return backoff.NewSeeded(500*time.Nanosecond, 100*time.Microsecond)
}
