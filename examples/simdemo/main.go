// Simdemo: the research side of the repository in one run.
//
// Builds the paper's evaluation stack — the simulated 16-processor
// bus-based multiprocessor, the paper-faithful STM with reused versioned
// transaction records in simulated shared memory — and demonstrates the
// cooperative method: processor 0 acquires a counter's ownership and goes
// to sleep for ten million cycles mid-transaction, yet the other fifteen
// processors finish instantly (in virtual time) by helping it through.
//
// Run with: go run ./examples/simdemo
package main

import (
	"fmt"
	"log"

	"github.com/stm-go/stm/internal/sim"
	"github.com/stm-go/stm/internal/simstm"
)

const (
	procs    = 16
	perProc  = 500
	stallFor = 10_000_000 // cycles
)

func main() {
	s, err := simstm.NewSTM(simstm.Config{
		Procs:     procs,
		DataWords: 2,
		MaxK:      1,
		Ops: []simstm.OpFunc{
			func(arg, _ uint64, old []uint64) []uint64 {
				return []uint64{old[0] + arg}
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	m, err := sim.NewMachine(sim.Config{
		Procs:  procs,
		Words:  s.Words(),
		Model:  sim.NewBusModel(procs, s.Words(), sim.DefaultBusConfig()),
		Seed:   1995,
		Jitter: 1,
		// Processor 0 is "preempted" for a long stretch every few
		// operations — in the middle of transactions, while holding
		// ownership records.
		Stall: &sim.StallPlan{Procs: 1, Period: 9, Duration: stallFor},
	})
	if err != nil {
		log.Fatal(err)
	}

	finish := make([]int64, procs)
	progs := make([]sim.Program, procs)
	for i := range progs {
		i := i
		progs[i] = func(p *sim.Proc) {
			for k := 0; k < perProc; k++ {
				s.Run(p, []int{0}, 0, 1, 0)
			}
			finish[i] = p.Now()
		}
	}
	if _, err := m.Run(progs); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d processors incrementing one counter; processor 0 stalls %d cycles every 9 ops\n",
		procs, stallFor)
	fmt.Printf("final counter: %d (want %d)\n", m.WordAt(s.DataAddr(0)), procs*perProc)
	var worst int64
	for i := 1; i < procs; i++ {
		if finish[i] > worst {
			worst = finish[i]
		}
	}
	fmt.Printf("slowest unstalled processor finished at %d cycles — %.4f%% of one stall\n",
		worst, 100*float64(worst)/float64(stallFor))
	fmt.Printf("stalled processor finished at %d cycles\n", finish[0])
	st := s.Stats()
	fmt.Printf("protocol: %d commits, %d failures, %d helps (stalled transactions completed by peers), %d heals\n",
		st.Commits, st.Failures, st.Helps, st.Heals)
}
