// Obs: observing a Memory with the stmobs seam.
//
// Runs the same contended counter workload on both engines with full
// observability enabled — counters, histograms, and sampled traces into a
// ring — then dumps what each surface sees: the abort taxonomy and latency
// histograms (DebugString), the expvar JSON a /debug/vars scraper would
// read, and the last few sampled transaction traces.
//
// Run with: go run ./examples/obs
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"log"
	"math/rand"
	"sync"

	stm "github.com/stm-go/stm"
	"github.com/stm-go/stm/stmobs"
)

const (
	words   = 64
	workers = 8
	txs     = 20_000 // transactions per worker
)

func run(engine stm.Engine) {
	tracer := stmobs.NewRingTracer(4)
	m, err := stm.New(words,
		stm.WithEngine(engine),
		stm.WithObs(stm.ObsConfig{
			Level:       stm.ObsTrace,
			Observer:    tracer,
			SampleEvery: 1024,
		}))
	if err != nil {
		log.Fatal(err)
	}
	stmobs.Publish("stm_"+engine.String(), m)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go stmobs.Do(context.Background(), m, "obs-worker", func(context.Context) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < txs; i++ {
				// Two random words, incremented together: enough overlap
				// on 64 words to exercise the abort paths.
				a, b := rng.Intn(words), rng.Intn(words)
				for b == a {
					b = rng.Intn(words)
				}
				if a > b {
					a, b = b, a
				}
				_, err := m.AtomicUpdate([]int{a, b}, func(old []uint64) []uint64 {
					return []uint64{old[0] + 1, old[1] + 1}
				})
				if err != nil {
					log.Fatal(err)
				}
			}
		})
	}
	wg.Wait()

	fmt.Printf("==== engine %s ====\n\n", engine)
	fmt.Println(m.DebugString())

	// What a /debug/vars scraper would see for this Memory.
	raw, err := json.MarshalIndent(stmobs.StatsMap(m), "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expvar %q:\n%s\n\n", "stm_"+engine.String(), raw)

	traces := tracer.Traces()
	fmt.Printf("sampled traces retained: %d of %d delivered\n", len(traces), tracer.Total())
	for _, tr := range traces {
		fmt.Printf("  seq=%d writes=%d committed=%v reason=%d addrs=%v ticks=%d\n",
			tr.Seq, tr.Writes, tr.Committed, tr.Reason, tr.Addrs, tr.Ticks)
	}
	fmt.Println()
}

func main() {
	for _, engine := range stm.Engines() {
		run(engine)
	}
	// The Memories stay registered with expvar; a server would expose them
	// at /debug/vars. Show they are really there.
	names := 0
	expvar.Do(func(kv expvar.KeyValue) {
		if len(kv.Key) > 4 && kv.Key[:4] == "stm_" {
			names++
		}
	})
	fmt.Printf("expvar registry now serves %d stm memories at /debug/vars\n", names)
}
