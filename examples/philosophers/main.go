// Philosophers: dining philosophers with k-word static transactions.
//
// Each philosopher grabs BOTH forks in one atomic transaction — the k=2
// case of k-way resource allocation. There is no lock ordering discipline
// to get wrong and no hold-and-wait: the engine acquires ownership in
// global address order and helps conflicting transactions through, so the
// classic deadlock cannot occur even though every philosopher "reaches for
// the left fork first".
//
// Run with: go run ./examples/philosophers
package main

import (
	"fmt"
	"log"
	"sync"

	stm "github.com/stm-go/stm"
	"github.com/stm-go/stm/internal/adt"
)

const (
	philosophers = 7 // the classic Petri-net instance
	meals        = 2_000
)

func main() {
	m, err := stm.New(adt.ResourceAllocatorWords(philosophers))
	if err != nil {
		log.Fatal(err)
	}
	forks, err := adt.NewResourceAllocator(m, 0, philosophers, 1)
	if err != nil {
		log.Fatal(err)
	}

	eaten := make([]int, philosophers)
	var wg sync.WaitGroup
	for i := 0; i < philosophers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			left, right := i, (i+1)%philosophers
			// Everyone declares left-then-right: the deadlock pattern for
			// incremental locking, harmless for static transactions.
			pair := []int{left, right}
			for n := 0; n < meals; n++ {
				if err := forks.Acquire(pair); err != nil {
					log.Println("acquire:", err)
					return
				}
				eaten[i]++ // eating (forks held exclusively)
				if err := forks.Release(pair); err != nil {
					log.Println("release:", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	totalMeals := 0
	for i, n := range eaten {
		fmt.Printf("philosopher %d ate %d times\n", i, n)
		totalMeals += n
	}
	fmt.Printf("total meals: %d (want %d) — no deadlock, no starvation\n",
		totalMeals, philosophers*meals)
	for i := 0; i < philosophers; i++ {
		free, err := forks.Available(i)
		if err != nil {
			log.Fatal(err)
		}
		if free != 1 {
			log.Fatalf("fork %d not returned (available=%d)", i, free)
		}
	}
	fmt.Println("all forks back on the table")
}
