// Quickstart: the public STM API in one file.
//
// A Memory is a vector of uint64 words; a static transaction declares the
// words it touches and a pure update function, and the engine applies it
// atomically — the Shavit–Touitou protocol underneath is non-blocking, so
// no transaction ever waits on a stalled goroutine.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	stm "github.com/stm-go/stm"
)

func main() {
	m, err := stm.New(16)
	if err != nil {
		log.Fatal(err)
	}

	// Initialize a few words atomically.
	if err := m.WriteAll([]int{0, 1, 2}, []uint64{100, 200, 300}); err != nil {
		log.Fatal(err)
	}

	// A multi-word transaction: rotate three words left, atomically.
	old, err := m.Atomically([]int{0, 1, 2}, func(old []uint64) []uint64 {
		return []uint64{old[1], old[2], old[0]}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rotated %v -> ", old)
	now, _ := m.ReadAll(0, 1, 2)
	fmt.Println(now)

	// Prepared transactions amortize validation for hot paths.
	tx, err := m.Prepare([]int{5, 9})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tx.Run(func(old []uint64) []uint64 {
			return []uint64{old[0] + 1, old[1] + 2}
		})
	}
	pair, _ := m.ReadAll(5, 9)
	fmt.Printf("after 3 prepared runs: words 5,9 = %v\n", pair)

	// k-word compare-and-swap: the classic static-transaction consumer.
	swapped, observed, err := m.CompareAndSwapN(
		[]int{5, 9}, []uint64{3, 6}, []uint64{33, 66})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CASN success=%v (observed %v)\n", swapped, observed)

	// Single-word conveniences.
	if _, err := m.Add(7, 41); err != nil {
		log.Fatal(err)
	}
	oldv, _ := m.Swap(7, 7)
	fmt.Printf("word 7 was %d, now %d\n", oldv, m.Peek(7))

	// Blocking-style operations: RunWhen retries until a guard holds.
	done := make(chan struct{})
	gate, _ := m.Prepare([]int{15})
	go func() {
		gate.RunWhen(
			func(old []uint64) bool { return old[0] > 0 }, // wait for a token
			func(old []uint64) []uint64 { return []uint64{old[0] - 1} },
		)
		close(done)
	}()
	fmt.Println("consumer waiting for a token...")
	if _, err := m.Add(15, 1); err != nil { // produce the token
		log.Fatal(err)
	}
	<-done
	fmt.Println("consumer took the token; gate =", m.Peek(15))

	st := m.Stats()
	fmt.Printf("protocol stats: %d attempts, %d commits, %d failures, %d helps\n",
		st.Attempts, st.Commits, st.Failures, st.Helps)
}
