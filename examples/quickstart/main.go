// Quickstart: the public STM API in one file.
//
// The typed layer is the front door: allocate Var[T] handles, then run
// typed transactions over them with Atomic combinators or a prepared
// TxSet. Underneath, every typed transaction compiles to one of the
// paper's static transactions — the data set is fixed before it starts —
// and the Shavit–Touitou protocol is non-blocking, so no transaction ever
// waits on a stalled goroutine. The raw word-addressed API is still there
// for engine-level access, shown at the end.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	stm "github.com/stm-go/stm"
)

func main() {
	m, err := stm.New(64)
	if err != nil {
		log.Fatal(err)
	}

	// Typed variables, allocated from the Memory's word allocator.
	checking, err := stm.Alloc(m, stm.Int64())
	if err != nil {
		log.Fatal(err)
	}
	savings, err := stm.Alloc(m, stm.Int64())
	if err != nil {
		log.Fatal(err)
	}
	rate, err := stm.Alloc(m, stm.Float64())
	if err != nil {
		log.Fatal(err)
	}
	checking.Store(900)
	savings.Store(100)
	rate.Store(0.031)

	// A typed two-variable transaction: move money atomically.
	if err := stm.Atomic2(checking, savings, func(c, s int64) (int64, int64) {
		return c - 250, s + 250
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checking %d, savings %d, rate %.3f\n",
		checking.Load(), savings.Load(), rate.Load())

	// Hot paths prepare a TxSet once: the data set is validated, sorted,
	// and compiled to a static transaction, and every Run after that is
	// allocation-free.
	ts := stm.NewTxSet(m)
	ch := stm.AddVar(ts, checking)
	sv := stm.AddVar(ts, savings)
	for i := 0; i < 3; i++ {
		if err := ts.Run(func(tv stm.TxView) {
			ch.Set(tv, ch.Get(tv)+10)
			sv.Set(tv, sv.Get(tv)+1)
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after 3 prepared runs: checking %d, savings %d\n",
		checking.Load(), savings.Load())

	// Single-variable read-modify-write, with the old value back.
	old := savings.Update(func(s int64) int64 { return s * 2 })
	fmt.Printf("savings doubled: %d -> %d\n", old, savings.Load())

	// Blocking-style operations: RunWhen retries until a guard holds.
	gate, err := stm.Alloc(m, stm.Bool())
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		wts := stm.NewTxSet(m)
		g := stm.AddVar(wts, gate)
		c := stm.AddVar(wts, checking)
		if err := wts.RunWhen(
			func(tv stm.TxView) bool { return g.Get(tv) }, // wait for the gate
			func(tv stm.TxView) {
				g.Set(tv, false)
				c.Set(tv, c.Get(tv)-1) // take a token
			},
		); err != nil {
			log.Fatal(err)
		}
		close(done)
	}()
	fmt.Println("consumer waiting for the gate...")
	gate.Store(true)
	<-done
	fmt.Println("consumer passed; checking =", checking.Load())

	// Engine-level access: the raw word-addressed static-transaction API
	// underneath. Reserve words from the same allocator so raw and typed
	// regions never collide, then address them directly.
	base, err := m.AllocWords(3)
	if err != nil {
		log.Fatal(err)
	}
	addrs := []int{base, base + 1, base + 2}
	if err := m.WriteAll(addrs, []uint64{100, 200, 300}); err != nil {
		log.Fatal(err)
	}
	rotated, err := m.AtomicUpdate(addrs, func(old []uint64) []uint64 {
		return []uint64{old[1], old[2], old[0]}
	})
	if err != nil {
		log.Fatal(err)
	}
	now, _ := m.ReadAll(addrs...)
	fmt.Printf("raw rotate %v -> %v\n", rotated, now)
	swapped, observed, err := m.CompareAndSwapN(addrs, now, []uint64{1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw CASN success=%v (observed %v)\n", swapped, observed)

	st := m.Stats()
	fmt.Printf("protocol stats: %d attempts, %d commits, %d failures, %d helps\n",
		st.Attempts, st.Commits, st.Failures, st.Helps)
}
