// Transactional data structures: a producer/consumer pipeline composed
// from stmds.Queue and stmds.Map sharing one Memory.
//
// Producers put jobs into a bounded Queue, blocking (via the queue's
// internal Retry) when consumers fall behind. Each consumer moves a job
// from the queue into a shared results Map in ONE atomic transaction —
// TakeTx plus PutTx inside a single Atomically block — so at every
// instant each job is in exactly one place: no interleaving can observe
// a job in both the queue and the map, or in neither. A monitor
// goroutine demonstrates the OrElse composition: it polls the pipeline
// with TryTakeTx-style semantics instead of blocking.
//
// Run with: go run ./examples/ds
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	stm "github.com/stm-go/stm"
	"github.com/stm-go/stm/stmds"
)

const (
	producers = 3
	consumers = 2
	perProd   = 200
	queueCap  = 8
)

func main() {
	m, err := stm.New(1 << 14)
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := stmds.NewQueue[int64](m, stm.Int64(), queueCap)
	if err != nil {
		log.Fatal(err)
	}
	// The consumers write results only through PutTx, which joins the
	// caller's transaction and therefore cannot grow the table (growth
	// needs its own transactions). So the map is sized for the full job
	// count up front — the contract documented on Map.PutTx.
	results, err := stmds.NewMap[int64, int64](m, stm.Int64(), stm.Int64(), producers*perProd)
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := int64(0); i < perProd; i++ {
				jobs.Put(int64(p)*perProd + i) // blocks while the queue is full
			}
		}(p)
	}

	var processed atomic.Int64
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func(c int) {
			defer cg.Done()
			for {
				var job int64
				// Take a job and record its result in the same atomic
				// step. TakeTx retries while the queue is empty, parking
				// this goroutine until a producer commits a put.
				err := m.Atomically(func(tx *stm.DTx) error {
					job = jobs.TakeTx(tx)
					if job < 0 {
						return nil // poison pill: drained below
					}
					_, _, err := results.PutTx(tx, job, job*job)
					return err
				})
				if err != nil {
					log.Fatal(err)
				}
				if job < 0 {
					return
				}
				processed.Add(1)
			}
		}(c)
	}

	// The monitor prefers draining a waiting job (first branch); when the
	// queue is empty — TakeTx retries — OrElse falls through to a pure
	// read of the scoreboard instead of blocking.
	snapshots := 0
	for s := 0; s < 5; s++ {
		var qlen, done int
		var tookJob bool
		// Transaction functions may re-execute, so they only assign to
		// locals; the side effect (the processed counter) happens after
		// the commit, from what the committed execution recorded.
		err := m.OrElse(
			func(tx *stm.DTx) error {
				tookJob = false
				job := jobs.TakeTx(tx)
				if job < 0 {
					// Never steal a consumer's poison pill: re-enqueue it
					// in the same transaction (this rotates it behind any
					// queued jobs — harmless, the pill still reaches a
					// consumer) and report the scoreboard instead. In this
					// program pills only appear after the monitor loop has
					// finished; the branch is robustness, not a hot path.
					jobs.PutTx(tx, job)
				} else {
					if _, _, err := results.PutTx(tx, job, job*job); err != nil {
						return err
					}
					tookJob = true
				}
				qlen = jobs.LenTx(tx)
				done = results.LenTx(tx)
				return nil
			},
			func(tx *stm.DTx) error {
				tookJob = false
				qlen = jobs.LenTx(tx)
				done = results.LenTx(tx)
				return nil
			},
		)
		if err != nil {
			log.Fatal(err)
		}
		if tookJob {
			processed.Add(1)
		}
		snapshots++
		fmt.Printf("monitor: queue=%d results=%d\n", qlen, done)
		time.Sleep(2 * time.Millisecond) // let the pipeline move between looks
	}

	wg.Wait() // all jobs produced
	for c := 0; c < consumers; c++ {
		jobs.Put(-1)
	}
	cg.Wait()

	// Verify the pipeline conserved every job.
	total := int64(producers * perProd)
	if got := int64(results.Len()); got != total {
		log.Fatalf("results hold %d jobs, want %d", got, total)
	}
	for j := int64(0); j < total; j++ {
		v, ok := results.Get(j)
		if !ok || v != j*j {
			log.Fatalf("job %d: result (%d, %v), want (%d, true)", j, v, ok, j*j)
		}
	}
	fmt.Printf("pipeline done: %d jobs through a %d-slot queue into the map "+
		"(%d consumer transactions, %d monitor snapshots), all conserved\n",
		total, queueCap, processed.Load(), snapshots)
}
