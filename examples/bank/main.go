// Bank: concurrent transfers with a live auditor.
//
// The motivating scenario for multi-word atomicity: move money between
// accounts under heavy concurrency while an auditor continuously takes
// transactional snapshots. Every snapshot must conserve the bank's total —
// with plain atomics or per-account locks it would not.
//
// Run with: go run ./examples/bank
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	stm "github.com/stm-go/stm"
	"github.com/stm-go/stm/internal/adt"
)

const (
	accounts = 32
	initial  = 1_000
	workers  = 8
	transfer = 5_000 // transfers per worker
)

func main() {
	m, err := stm.New(adt.AccountsWords(accounts))
	if err != nil {
		log.Fatal(err)
	}
	bank, err := adt.NewAccounts(m, 0, accounts, initial)
	if err != nil {
		log.Fatal(err)
	}
	want := uint64(accounts * initial)

	var (
		wg       sync.WaitGroup
		audits   atomic.Int64
		rejected atomic.Int64
		stop     = make(chan struct{})
	)

	// Auditor: hammer consistent snapshots while transfers fly.
	auditorDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				auditorDone <- nil
				return
			default:
			}
			_, total, err := bank.Audit()
			if err != nil {
				auditorDone <- err
				return
			}
			if total != want {
				auditorDone <- fmt.Errorf("audit saw %d, want %d", total, want)
				return
			}
			audits.Add(1)
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < transfer; i++ {
				src, dst := rng.Intn(accounts), rng.Intn(accounts)
				amt := uint64(rng.Intn(200))
				if err := bank.Transfer(src, dst, amt); err != nil {
					rejected.Add(1) // insufficient funds: rejected atomically
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if err := <-auditorDone; err != nil {
		log.Fatal(err)
	}

	balances, total, err := bank.Audit()
	if err != nil {
		log.Fatal(err)
	}
	min, max := balances[0], balances[0]
	for _, b := range balances {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	fmt.Printf("%d workers × %d transfers done\n", workers, transfer)
	fmt.Printf("rejected (insufficient funds): %d\n", rejected.Load())
	fmt.Printf("audits that all conserved:     %d\n", audits.Load())
	fmt.Printf("final total: %d (want %d) — balances range [%d, %d]\n", total, want, min, max)
	st := m.Stats()
	fmt.Printf("protocol: %d commits, %d conflicts helped through\n", st.Commits, st.Helps)
	if total != want {
		log.Fatal("CONSERVATION VIOLATED")
	}
}
