// Example: the stmserve network server end to end, in one process — a
// server on a loopback listener and a handful of raw-protocol clients
// exercising the three things that make it an STM demo rather than a toy
// cache: pipelining (N commands, one commit), MULTI/EXEC (a multi-key
// transfer that is atomic across connections), and BQPOP (a consumer
// parked on DTx.Retry until a producer's commit wakes it).
//
// Run it:
//
//	go run ./examples/serve
package main

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"strings"

	stm "github.com/stm-go/stm"
	"github.com/stm-go/stm/stmserve"
)

func main() {
	srv, err := stmserve.New(stmserve.Config{Engine: stm.ST})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()
	fmt.Printf("serving on %s\n\n", addr)

	// --- Pipelining: six commands written back to back arrive as one
	// batch and commit as ONE transaction; six replies come back in order.
	c := dialOrDie(addr)
	send(c, "SET alice 100\r\nSET bob 100\r\nGET alice\r\nGET bob\r\nINCR visits\r\nINCR visits\r\n")
	fmt.Println("pipelined batch (one commit):")
	printReplies(c, 6)

	// --- MULTI/EXEC: a transfer whose intermediate state no other
	// connection can observe. A second client reads both balances
	// atomically before and after.
	observer := dialOrDie(addr)
	fmt.Println("\ntransfer 30 alice->bob inside MULTI/EXEC:")
	send(c, "MULTI\r\nINCRBY alice -30\r\nINCRBY bob 30\r\nEXEC\r\n")
	printReplies(c, 4)
	send(observer, "MULTI\r\nGET alice\r\nGET bob\r\nEXEC\r\n")
	fmt.Println("observer's atomic snapshot:")
	printReplies(observer, 4)

	// --- Blocking pop: the consumer's BQPOP parks server-side on
	// DTx.Retry; the producer's QPUSH commit wakes it.
	consumer := dialOrDie(addr)
	popped := make(chan string, 1)
	go func() {
		send(consumer, "BQPOP jobs\r\n")
		line, err := consumer.r.ReadString('\n') // "$15\r\n"
		if err != nil {
			log.Fatal(err)
		}
		body, err := consumer.r.ReadString('\n')
		if err != nil {
			log.Fatal(err)
		}
		popped <- strings.TrimRight(line, "\r\n") + " " + strings.TrimRight(body, "\r\n")
	}()
	fmt.Println("\nproducer pushes while a consumer blocks in BQPOP:")
	send(c, "QPUSH jobs build-artifacts\r\n")
	printReplies(c, 1)
	fmt.Printf("consumer woke with:\n  %s\n", <-popped)
}

func dialOrDie(addr string) *client {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func send(c *client, req string) {
	if _, err := c.conn.Write([]byte(req)); err != nil {
		log.Fatal(err)
	}
}

// printReplies reads n top-level replies, following array nesting, and
// prints them indented.
func printReplies(c *client, n int) {
	for i := 0; i < n; i++ {
		printOne(c, "  ")
	}
}

func printOne(c *client, indent string) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s%s\n", indent, strings.TrimRight(line, "\r\n"))
	switch line[0] {
	case '$':
		var size int
		fmt.Sscanf(line[1:], "%d", &size)
		if size < 0 {
			return
		}
		body := make([]byte, size+2)
		for read := 0; read < len(body); {
			m, err := c.r.Read(body[read:])
			if err != nil {
				log.Fatal(err)
			}
			read += m
		}
		fmt.Printf("%s%s\n", indent, strings.TrimRight(string(body), "\r\n"))
	case '*':
		var count int
		fmt.Sscanf(line[1:], "%d", &count)
		for i := 0; i < count; i++ {
			printOne(c, indent+"  ")
		}
	}
}
