// Dynamic transactions: a concurrent sorted linked list via Atomically.
//
// The static API needs every address declared before a transaction
// starts, which rules out pointer-chasing structures — you cannot know
// which nodes an insert will touch until you have walked the list.
// Atomically removes the restriction: the transaction function reads and
// writes through a DTx, discovering its footprint as it walks, and the
// engine commits the discovered set through the same static protocol.
//
// Here several goroutines insert and remove keys from one sorted list
// while a consumer uses Retry to block until a sentinel key appears and
// OrElse to prefer one key over another. The walk is safe by
// construction: dynamic reads always observe a consistent snapshot, so a
// traversal can never follow a half-updated link.
//
// Run with: go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	stm "github.com/stm-go/stm"
)

// The list lives in raw words: word `head` holds the base address of the
// first node (0 = empty); a node at base b is [b]=key, [b+1]=next base.
const (
	head     = 0
	capacity = 64
	memWords = 1 + 2*capacity
)

// list is a sorted set of uint64 keys. Node slots are recycled through a
// mutex-guarded free list — the slot store is ordinary Go state; only the
// list structure itself is transactional.
type list struct {
	m    *stm.Memory
	mu   sync.Mutex
	free []int
}

func newList() (*list, error) {
	m, err := stm.New(memWords)
	if err != nil {
		return nil, err
	}
	l := &list{m: m}
	for i := capacity - 1; i >= 0; i-- {
		l.free = append(l.free, 1+2*i)
	}
	return l, nil
}

func (l *list) getSlot() (int, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.free) == 0 {
		return 0, false
	}
	s := l.free[len(l.free)-1]
	l.free = l.free[:len(l.free)-1]
	return s, true
}

func (l *list) putSlot(s int) {
	l.mu.Lock()
	l.free = append(l.free, s)
	l.mu.Unlock()
}

// insert adds k, keeping the list sorted; false if already present. The
// candidate slot is reserved before the transaction so re-executions
// (after a conflicting commit) never allocate twice; it is returned if
// the key turned out to be a duplicate.
func (l *list) insert(k uint64) (bool, error) {
	slot, ok := l.getSlot()
	if !ok {
		return false, fmt.Errorf("list full")
	}
	var inserted bool
	err := l.m.Atomically(func(tx *stm.DTx) error {
		inserted = false
		prevNext := head
		pos := tx.Read(head)
		for pos != 0 {
			key := tx.Read(int(pos))
			if key == k {
				return nil // duplicate
			}
			if key > k {
				break
			}
			prevNext = int(pos) + 1
			pos = tx.Read(prevNext)
		}
		tx.Write(slot, k)
		tx.Write(slot+1, pos)
		tx.Write(prevNext, uint64(slot))
		inserted = true
		return nil
	})
	if err != nil || !inserted {
		l.putSlot(slot)
	}
	return inserted, err
}

// remove unlinks k; false if absent.
func (l *list) remove(k uint64) (bool, error) {
	var freed int
	err := l.m.Atomically(func(tx *stm.DTx) error {
		freed = 0
		prevNext := head
		pos := tx.Read(head)
		for pos != 0 {
			key := tx.Read(int(pos))
			if key == k {
				tx.Write(prevNext, tx.Read(int(pos)+1))
				freed = int(pos)
				return nil
			}
			if key > k {
				return nil
			}
			prevNext = int(pos) + 1
			pos = tx.Read(prevNext)
		}
		return nil
	})
	if err == nil && freed != 0 {
		l.putSlot(freed)
	}
	return freed != 0, err
}

// takeIfPresent removes k if the list holds it, and Retries — blocking
// until the list changes — if it doesn't: a building block for the
// blocking consumer below. The unlinked node's base lands in *freed
// (reset on every execution, so re-runs never report a stale slot); the
// caller recycles it after the transaction commits.
func (l *list) takeIfPresent(k uint64, freed *int) func(tx *stm.DTx) error {
	return func(tx *stm.DTx) error {
		*freed = 0
		prevNext := head
		pos := tx.Read(head)
		for pos != 0 {
			key := tx.Read(int(pos))
			if key == k {
				tx.Write(prevNext, tx.Read(int(pos)+1))
				*freed = int(pos)
				return nil
			}
			if key > k {
				break
			}
			prevNext = int(pos) + 1
			pos = tx.Read(prevNext)
		}
		tx.Retry()
		return nil
	}
}

func (l *list) snapshot() (keys []uint64) {
	// A read-only dynamic transaction: the walk itself is one atomic
	// snapshot, so the keys are a real state of the list.
	_ = l.m.Atomically(func(tx *stm.DTx) error {
		keys = keys[:0]
		for pos := tx.Read(head); pos != 0; pos = tx.Read(int(pos) + 1) {
			keys = append(keys, tx.Read(int(pos)))
		}
		return nil
	})
	return keys
}

func main() {
	l, err := newList()
	if err != nil {
		log.Fatal(err)
	}

	// Churn: four goroutines insert and remove random keys.
	const workers, churn = 4, 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < churn; i++ {
				k := uint64(rng.Intn(40) + 10)
				if rng.Intn(2) == 0 {
					if _, err := l.insert(k); err != nil {
						log.Println("insert:", err)
						return
					}
				} else if _, err := l.remove(k); err != nil {
					log.Println("remove:", err)
					return
				}
			}
		}(w)
	}

	// A blocking consumer: take 77 if it ever appears, else take 99 —
	// OrElse gives 77 priority, Retry parks the goroutine until the list
	// changes. The producer below publishes 99 only, so the consumer
	// demonstrably woke on the second branch.
	got := make(chan string, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var freedA, freedB int
		err := l.m.OrElse(l.takeIfPresent(77, &freedA), l.takeIfPresent(99, &freedB))
		if err != nil {
			got <- fmt.Sprintf("consumer error: %v", err)
			return
		}
		for _, s := range []int{freedA, freedB} {
			if s != 0 {
				l.putSlot(s)
			}
		}
		got <- "consumer took a sentinel (77 preferred, 99 accepted)"
	}()
	if _, err := l.insert(99); err != nil {
		log.Fatal(err)
	}
	fmt.Println(<-got)
	wg.Wait()

	keys := l.snapshot()
	fmt.Printf("final list (%d keys): %v\n", len(keys), keys)
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			log.Fatalf("sorted-set invariant broken at %d: %v", i, keys)
		}
	}
	st := l.m.Stats()
	fmt.Printf("engine: %d attempts, %d commits, %d failures, %d helps\n",
		st.Attempts, st.Commits, st.Failures, st.Helps)
	fmt.Println("sorted-set invariant held under concurrent dynamic transactions")
}
