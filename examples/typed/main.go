// Typed variables: the Var/TxSet layer over static transactions.
//
// A small payment ledger built from typed transactional variables — int64
// balances, a multi-word struct for audit state, a fixed-width string for
// the last-actor label — mutated by typed transactions that compile down
// to the engine's static data sets. No word addresses, no uint64
// juggling; conservation of money is checked live by a concurrent
// auditor.
//
// Run with: go run ./examples/typed
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	stm "github.com/stm-go/stm"
)

// audit is the ledger's struct-typed state: one Var[audit] spans two
// engine words via its codec below.
type audit struct {
	Transfers int64
	Volume    int64
}

type auditCodec struct{}

func (auditCodec) Words() int { return 2 }
func (auditCodec) Encode(a audit, dst []uint64) {
	dst[0], dst[1] = uint64(a.Transfers), uint64(a.Volume)
}
func (auditCodec) Decode(src []uint64) audit {
	return audit{Transfers: int64(src[0]), Volume: int64(src[1])}
}

const (
	accounts = 8
	initial  = 1_000
	workers  = 4
	perW     = 2_000
)

func main() {
	m, err := stm.New(64)
	if err != nil {
		log.Fatal(err)
	}

	// Declare the ledger: typed variables allocated from the Memory.
	balances := make([]*stm.Var[int64], accounts)
	for i := range balances {
		if balances[i], err = stm.Alloc(m, stm.Int64()); err != nil {
			log.Fatal(err)
		}
		balances[i].Store(initial)
	}
	auditVar, err := stm.Alloc(m, auditCodec{})
	if err != nil {
		log.Fatal(err)
	}
	lastActor, err := stm.Alloc(m, stm.String(16))
	if err != nil {
		log.Fatal(err)
	}

	// Workers transfer money through TxSets compiled once per account
	// pair and reused for every transfer on that pair.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			who := fmt.Sprintf("worker-%d", w)

			// Compile one TxSet per (from, to) pair up front: the data
			// set is validated and sorted once, and the hot loop below
			// only executes. (The update closure is still built per
			// transfer — it captures that transfer's amount; a fixed
			// update function, as in the benchmarks, would make the loop
			// fully allocation-free.)
			type transfer struct {
				ts       *stm.TxSet
				from, to stm.Slot[int64]
				au       stm.Slot[audit]
				actor    stm.Slot[string]
			}
			pairs := make(map[[2]int]*transfer)
			for a := 0; a < accounts; a++ {
				for b := 0; b < accounts; b++ {
					if a == b {
						continue
					}
					ts := stm.NewTxSet(m)
					tr := &transfer{
						ts:    ts,
						from:  stm.AddVar(ts, balances[a]),
						to:    stm.AddVar(ts, balances[b]),
						au:    stm.AddVar(ts, auditVar),
						actor: stm.AddVar(ts, lastActor),
					}
					if err := ts.Compile(); err != nil {
						log.Fatal(err)
					}
					pairs[[2]int{a, b}] = tr
				}
			}

			for i := 0; i < perW; i++ {
				a, b := rng.Intn(accounts), rng.Intn(accounts)
				if a == b {
					continue
				}
				amt := int64(rng.Intn(50) + 1)
				tr := pairs[[2]int{a, b}]
				err := tr.ts.Run(func(tv stm.TxView) {
					tr.from.Set(tv, tr.from.Get(tv)-amt)
					tr.to.Set(tv, tr.to.Get(tv)+amt)
					st := tr.au.Get(tv)
					tr.au.Set(tv, audit{st.Transfers + 1, st.Volume + amt})
					tr.actor.Set(tv, who)
				})
				if err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}

	// The auditor snapshots every variable through one compiled TxSet —
	// a single static transaction, so the invariant holds at every
	// linearization point it observes.
	stop := make(chan struct{})
	audited := make(chan int, 1)
	go func() {
		ts := stm.NewTxSet(m)
		slots := make([]stm.Slot[int64], accounts)
		for i, v := range balances {
			slots[i] = stm.AddVar(ts, v)
		}
		au := stm.AddVar(ts, auditVar)
		checks := 0
		for {
			select {
			case <-stop:
				audited <- checks
				return
			default:
			}
			if err := ts.Run(func(stm.TxView) {}); err != nil {
				log.Fatal(err)
			}
			var sum int64
			for _, s := range slots {
				sum += s.Old()
			}
			if sum != accounts*initial {
				log.Fatalf("audit #%d: total %d, want %d (after %d transfers)",
					checks, sum, accounts*initial, au.Old().Transfers)
			}
			checks++
		}
	}()

	wg.Wait()
	close(stop)
	checks := <-audited

	st := auditVar.Load()
	fmt.Printf("accounts conserve %d across %d transfers (volume %d)\n",
		accounts*initial, st.Transfers, st.Volume)
	fmt.Printf("%d consistent audits passed; last actor: %q\n", checks, lastActor.Load())

	ps := m.Stats()
	fmt.Printf("protocol stats: %d attempts, %d commits, %d failures, %d helps\n",
		ps.Attempts, ps.Commits, ps.Failures, ps.Helps)
}
