// Queue: producers and consumers on the transactional deque — the paper's
// doubly-linked queue benchmark object as an application.
//
// Each operation is one static transaction over {head, tail, slot}; FIFO
// order, no element loss or duplication, bounded capacity back-pressure.
//
// Run with: go run ./examples/queue
package main

import (
	"fmt"
	"log"
	"sync"

	stm "github.com/stm-go/stm"
	"github.com/stm-go/stm/internal/adt"
)

const (
	capacity  = 64
	producers = 4
	consumers = 4
	perProd   = 10_000
)

func main() {
	m, err := stm.New(adt.DequeWords(capacity))
	if err != nil {
		log.Fatal(err)
	}
	q, err := adt.NewDeque(m, 0, capacity)
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				// Tag values with the producer id so order is checkable.
				v := uint64(p)<<32 | uint64(i)
				if err := q.PushTail(v); err != nil {
					log.Println("push:", err)
					return
				}
			}
		}(p)
	}

	type result struct {
		count   int
		inOrder bool
	}
	results := make(chan result, consumers)
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			lastPer := map[uint64]uint64{}
			r := result{inOrder: true}
			for i := 0; i < producers*perProd/consumers; i++ {
				v, err := q.PopHead()
				if err != nil {
					log.Println("pop:", err)
					return
				}
				prod, seq := v>>32, v&0xFFFFFFFF
				if last, ok := lastPer[prod]; ok && seq <= last {
					r.inOrder = false // FIFO violated within one producer
				}
				lastPer[prod] = seq
				r.count++
			}
			results <- r
		}()
	}

	wg.Wait()
	cg.Wait()
	close(results)

	total := 0
	allOrdered := true
	for r := range results {
		total += r.count
		allOrdered = allOrdered && r.inOrder
	}
	fmt.Printf("moved %d values through a %d-slot transactional deque\n", total, capacity)
	fmt.Printf("per-producer FIFO preserved at each consumer: %v\n", allOrdered)
	fmt.Printf("queue length at exit: %d\n", q.Len())
	st := m.Stats()
	fmt.Printf("protocol: %d commits, %.1f%% of attempts conflicted and were helped through\n",
		st.Commits, 100*float64(st.Failures)/float64(st.Attempts))
	if total != producers*perProd || q.Len() != 0 {
		log.Fatal("QUEUE INVARIANT VIOLATED")
	}
}
